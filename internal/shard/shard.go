// Package shard runs one OASIS searcher per work partition on a bounded
// worker pool and merges the per-shard hit streams into one globally
// score-ordered stream.
//
// Two partition modes are supported.  PartitionBySequence (the original)
// splits the database into independently indexed shards balanced by residue
// count; each shard owns a disjoint sequence subset, so streams never
// overlap, but every shard rebuilds its own suffix tree and re-expands the
// same near-root columns.  PartitionByPrefix builds ONE shared suffix tree
// and assigns disjoint top-level subtrees to shards by suffix prefix
// (seq.PartitionByPrefix + core.ExpandFrontier): the near-root columns are
// computed exactly once per query, so total ColumnsExpanded stays flat as
// the shard count grows.  Because a sequence's suffixes spread across
// subtrees, prefix shards may report the same sequence more than once (at
// most once per shard, each at that shard's best score); the merger
// deduplicates, and the frontier-bound release rule guarantees the first
// released hit for a sequence carries its global best score.
//
// In both modes a shard's searcher reports its hits in decreasing score
// order and additionally publishes a decreasing frontier bound — the f-value
// of the node at the head of its priority queue, which caps every score the
// shard can still report (core.SearchStream / core.SearchSeedsStream).  The
// merger releases a buffered hit as soon as its score is strictly above
// every unfinished shard's latest bound, which preserves the paper's online
// decreasing-score property end to end while keeping first-hit latency low:
// no shard has to finish before the strongest hits start flowing.
//
// The merged (sequence, score, rank, E-value) stream is reproducible run to
// run: equal-score ties are released only after every shard that could still
// produce that score has moved past it, in ascending global sequence index —
// so even a top-k truncation (MaxResults) cuts the stream at the same hits
// every time.  (Tie ORDER may still differ from the single-index search,
// which breaks ties by subtree discovery; the hit multiset — same sequences,
// same scores — is identical in all configurations.)  Alignment ENDPOINTS are
// byte-stable too, except in prefix mode with work stealing enabled, where a
// sequence holding several co-optimal alignments may report a different
// member of the tie set from one run to the next (steal.go); Options.NoSteal
// restores byte-identical streams.
package shard

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/diskst"
	"repro/internal/faultpoint"
	"repro/internal/score"
	"repro/internal/seq"
)

// PartitionMode selects how a sharded engine divides work among shards.
type PartitionMode int

const (
	// PartitionBySequence splits the database into independently indexed
	// shards balanced by residue count (one suffix tree per shard).
	PartitionBySequence PartitionMode = iota
	// PartitionByPrefix builds one shared suffix tree and assigns disjoint
	// top-level subtrees to shards by suffix prefix, eliminating duplicated
	// near-root column work.
	PartitionByPrefix
)

// Options configures a sharded engine.
type Options struct {
	// Shards is the number of work partitions (default 1; capped at the
	// number of sequences in PartitionBySequence mode).
	Shards int
	// Workers bounds how many shard searches run concurrently (default:
	// one worker per shard).
	Workers int
	// Partition selects the work-partitioning strategy (default
	// PartitionBySequence).
	Partition PartitionMode
	// NoSteal disables work stealing between prefix shards (see steal.go):
	// each shard then searches exactly its static LPT seed batch, as before.
	// Only meaningful in PartitionByPrefix mode with more than one shard.
	NoSteal bool
}

// The prefix partitioner must satisfy the core assigner contract.
var _ core.SubtreeAssigner = (*seq.PrefixPartition)(nil)

// Engine is a sharded OASIS search engine over one logical database.  It is
// safe for concurrent use: the indexes are immutable after construction and
// every search draws its scratch buffers from a shared bounded free list, so
// a long-running engine (internal/engine) can multiplex many queries over
// one warm Engine without per-query allocation.
//
// The engine does not care where its per-shard indexes live: NewEngine
// builds in-memory suffix trees from a database, while NewEngineFromSet
// accepts any prebuilt core.Index per shard — in particular disk-resident
// indexes (internal/diskst) each read through its own buffer pool, so shard
// parallelism also parallelises I/O.
type Engine struct {
	mode    PartitionMode
	nShards int
	workers int
	total   int64 // global residue count, for E-values
	numSeqs int
	queryAl *seq.Alphabet
	cat     core.Catalog
	// Sequence mode: one index per shard, with shard-local -> global
	// sequence index maps.  Single-shard engines of either mode also use
	// this pair (the shared index with an identity map) so the single-shard
	// fast path is common.
	indexes []core.Index
	globals [][]int
	// Prefix mode: per-shard read handles on the ONE shared logical index
	// (for disk indexes, one handle per shard so each reads through its own
	// buffer pool), the handle used for the shared near-root expansion, and
	// the suffix-prefix assignment.
	views    []core.Index
	frontier core.Index
	prefixes *seq.PrefixPartition
	// closers are resources the engine owns (disk index files); see Close.
	// disk is set by OpenDiskEngine for buffer-pool statistics.
	closers []io.Closer
	disk    *diskst.Sharded
	// scratch recycles per-shard searcher state across queries; dedups
	// recycles the merger's emitted-sequence sets (prefix mode only).
	scratch *bufferpool.FreeList[*core.Scratch]
	dedups  *bufferpool.FreeList[*dedupSet]
	// affine[s] parks the scratch shard s's worker used last, so a warm
	// engine re-serves a shard with buffers already sized to its workload
	// (band free lists, node stores) before falling back to the shared pool.
	affine []atomic.Pointer[core.Scratch]
	// nosteal disables prefix-shard work stealing; steals counts seeds
	// claimed by a non-owner shard over the engine's lifetime.
	nosteal bool
	steals  atomic.Int64
	// queued/active count, per shard, searches waiting for a worker slot and
	// searches running (see QueueDepths).
	queued []atomic.Int64
	active []atomic.Int64
	// standing lists shards that were quarantined at open time (e.g. an
	// unreadable disk shard admitted with AllowDegraded); every search over
	// the engine is degraded by them.  quarantines counts shards quarantined
	// mid-query over the engine's lifetime (metrics).
	standing    []core.ShardError
	quarantines atomic.Int64
	// mutable is a standing mutable-layer context folded into every plain
	// Search: OpenDiskEngine sets it when the directory's manifest records
	// compacted delta layers or tombstones, so a reopened index serves the
	// manifest's full live corpus, not just the base generation.  The engine
	// layer manages its own per-query ExtraSet instead (DiskOptions.BaseOnly)
	// and leaves this nil.
	mutable *ExtraSet
	// providers, when set (NewEngineFromProviders), replace the local
	// indexes entirely: each shard of the merge is one opaque boundable hit
	// stream — in particular a remote shard server's stream (internal/remote).
	// Provider shards are sequence-disjoint and always merge through
	// fanOutMerge, never the single-shard fast path.
	providers []Provider
}

// IndexSet describes prebuilt per-shard indexes for NewEngineFromSet.  It is
// how disk-resident shards (internal/diskst, opened one buffer pool per
// shard) and any other core.Index implementation plug into the sharded
// search without the engine building anything itself.
type IndexSet struct {
	// Partition declares how the indexes divide the logical database.
	Partition PartitionMode
	// Sequence mode: Indexes[s] covers a disjoint sequence subset and
	// Globals[s][i] is the global index of its i-th sequence.
	Indexes []core.Index
	Globals [][]int
	// Prefix mode: Views[s] is shard s's read handle on the one shared
	// index (entries may all be the same value, or independent handles so
	// each shard reads through its own buffer pool); Frontier is the handle
	// used for the shared near-root expansion (default Views[0]); Prefixes
	// assigns top-level subtrees to shards.
	Views    []core.Index
	Frontier core.Index
	Prefixes *seq.PrefixPartition
	// Catalog is the global sequence catalog.  Optional: it defaults to the
	// frontier's catalog in prefix mode and to the union of the shard
	// catalogs under Globals in sequence mode.
	Catalog core.Catalog
	// Closers are resources the engine takes ownership of (disk index
	// files, pools); Engine.Close releases them.
	Closers []io.Closer
	// Standing lists shards already quarantined when the set was assembled
	// (open-time failures admitted in degraded mode).  Indexes/Globals hold
	// only the survivors; every search is marked Degraded with these errors.
	Standing []core.ShardError
}

// NewEngine partitions the work for db into opts.Shards shards and builds
// the in-memory index(es): one per shard in PartitionBySequence mode, a
// single shared index in PartitionByPrefix mode.
func NewEngine(db *seq.Database, opts Options) (*Engine, error) {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	set := IndexSet{Partition: opts.Partition, Catalog: core.NewDatabaseCatalog(db)}
	switch opts.Partition {
	case PartitionBySequence:
		part, err := seq.PartitionDatabase(db, opts.Shards)
		if err != nil {
			return nil, err
		}
		set.Indexes = make([]core.Index, part.NumShards())
		set.Globals = part.GlobalIndex
		for s, shardDB := range part.Shards {
			idx, err := core.BuildMemoryIndex(shardDB)
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", s, err)
			}
			set.Indexes[s] = idx
		}
	case PartitionByPrefix:
		idx, err := core.BuildMemoryIndex(db)
		if err != nil {
			return nil, err
		}
		set.Prefixes, err = seq.PartitionByPrefix(db, opts.Shards)
		if err != nil {
			return nil, err
		}
		set.Views = make([]core.Index, set.Prefixes.NumShards())
		for s := range set.Views {
			set.Views[s] = idx
		}
		set.Frontier = idx
	default:
		return nil, fmt.Errorf("shard: unknown partition mode %d", opts.Partition)
	}
	return NewEngineFromSet(set, opts)
}

// NewEngineFromSet assembles a sharded engine over prebuilt per-shard
// indexes.  opts.Shards and opts.Partition are ignored (the set determines
// both); opts.Workers bounds shard-search concurrency as in NewEngine.
func NewEngineFromSet(set IndexSet, opts Options) (*Engine, error) {
	e := &Engine{mode: set.Partition, cat: set.Catalog, closers: set.Closers, standing: set.Standing}
	switch set.Partition {
	case PartitionBySequence:
		if len(set.Indexes) == 0 {
			return nil, fmt.Errorf("shard: sequence-mode index set has no indexes")
		}
		if len(set.Globals) != len(set.Indexes) {
			return nil, fmt.Errorf("shard: %d global maps for %d indexes", len(set.Globals), len(set.Indexes))
		}
		e.indexes = set.Indexes
		e.globals = set.Globals
		e.nShards = len(e.indexes)
		if e.cat == nil {
			cat, err := newUnionCatalog(set.Indexes, set.Globals)
			if err != nil {
				return nil, err
			}
			e.cat = cat
		}
	case PartitionByPrefix:
		if len(set.Views) == 0 {
			return nil, fmt.Errorf("shard: prefix-mode index set has no views")
		}
		if set.Prefixes == nil {
			return nil, fmt.Errorf("shard: prefix-mode index set has no prefix assignment")
		}
		if set.Prefixes.NumShards() != len(set.Views) {
			return nil, fmt.Errorf("shard: prefix assignment has %d shards, index set %d",
				set.Prefixes.NumShards(), len(set.Views))
		}
		e.views = set.Views
		e.frontier = set.Frontier
		if e.frontier == nil {
			e.frontier = set.Views[0]
		}
		e.prefixes = set.Prefixes
		e.nShards = len(e.views)
		if e.cat == nil {
			e.cat = e.frontier.Catalog()
		}
		if e.nShards == 1 {
			// Route through the common single-shard fast path.
			identity := make([]int, e.cat.NumSequences())
			for i := range identity {
				identity[i] = i
			}
			e.indexes = []core.Index{e.views[0]}
			e.globals = [][]int{identity}
		}
	default:
		return nil, fmt.Errorf("shard: unknown partition mode %d", set.Partition)
	}
	e.numSeqs = e.cat.NumSequences()
	e.total = e.cat.TotalResidues()
	e.queryAl = e.cat.Alphabet()
	e.workers = opts.Workers
	if e.workers < 1 || e.workers > e.nShards {
		e.workers = e.nShards
	}
	// Hold enough idle scratches for a few concurrent queries, each using
	// one scratch per shard search (plus the frontier expansion in prefix
	// mode).
	e.scratch = bufferpool.NewFreeList(4*(e.nShards+1), core.NewScratch)
	e.dedups = bufferpool.NewFreeList(8, func() *dedupSet { return &dedupSet{} })
	e.affine = make([]atomic.Pointer[core.Scratch], e.nShards)
	e.nosteal = opts.NoSteal
	e.queued = make([]atomic.Int64, e.nShards)
	e.active = make([]atomic.Int64, e.nShards)
	return e, nil
}

// Catalog returns the engine's global sequence catalog (hit sequence indexes
// are global, so alignment recovery and metadata lookups go through it).
func (e *Engine) Catalog() core.Catalog { return e.cat }

// Close releases resources the engine owns (disk index files handed over via
// IndexSet.Closers).  In-memory engines own nothing and Close is a no-op.
// Close does not wait for in-flight searches; callers must drain first.
func (e *Engine) Close() error {
	var first error
	for _, c := range e.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	e.closers = nil
	return first
}

// ScratchStats reports how often shard searches reused pooled scratch
// buffers instead of allocating fresh ones.
func (e *Engine) ScratchStats() bufferpool.FreeListStats { return e.scratch.Stats() }

// QueueDepth is one shard's instantaneous load: searches waiting for a
// worker-pool slot and searches currently running.
type QueueDepth struct {
	Shard  int   `json:"shard"`
	Queued int64 `json:"queued"`
	Active int64 `json:"active"`
}

// QueueDepths returns a snapshot of every shard's queued and active search
// counts (capacity-planning metric; see cmd/oasis-serve's /metrics).
func (e *Engine) QueueDepths() []QueueDepth {
	out := make([]QueueDepth, e.nShards)
	for s := range out {
		out[s] = QueueDepth{Shard: s, Queued: e.queued[s].Load(), Active: e.active[s].Load()}
	}
	return out
}

// Partition returns the engine's partition mode.
func (e *Engine) Partition() PartitionMode { return e.mode }

// Standing returns the shards quarantined at open time (nil for a healthy
// engine).  Every search over an engine with standing quarantines reports
// Degraded with these errors.
func (e *Engine) Standing() []core.ShardError { return e.standing }

// Quarantines returns how many shards have been quarantined mid-query over
// the engine's lifetime (each degraded query counts its failed shards).
func (e *Engine) Quarantines() int64 { return e.quarantines.Load() }

// Steals returns how many frontier seeds have been claimed by a non-owner
// shard over the engine's lifetime (prefix-mode work stealing; 0 with
// stealing disabled or in sequence mode).
func (e *Engine) Steals() int64 { return e.steals.Load() }

// NumShards returns the number of work partitions.
func (e *Engine) NumShards() int { return e.nShards }

// Workers returns the concurrency bound for shard searches.
func (e *Engine) Workers() int { return e.workers }

// Shard exposes one shard's index (tests and diagnostics); in prefix mode
// this is the shard's read handle on the shared index.
func (e *Engine) Shard(i int) core.Index {
	if e.mode == PartitionByPrefix && len(e.views) > 0 {
		return e.views[i]
	}
	return e.indexes[i]
}

// ExtraShard is one additional index searched alongside the engine's own
// shards: the engine layer's LSM delta layers (the in-memory memtable
// snapshot and compacted delta files) plug in here.  An extra shard covers a
// sequence subset disjoint from the base shards and from every other extra;
// Globals maps its shard-local sequence indexes into the global space.
type ExtraShard struct {
	Index   core.Index
	Globals []int
}

// ExtraSet is the per-query mutable-layer context for SearchExtra: the delta
// shards to merge in, the tombstone filter, and the live corpus totals that
// replace the engine's static ones.
type ExtraSet struct {
	// Shards are the delta providers merged into the base stream.
	Shards []ExtraShard
	// Drop reports whether a global sequence index is tombstoned; matching
	// hits are filtered out of the merged stream.  nil means no deletions.
	Drop func(seqIndex int) bool
	// LiveSeqs is the live (non-tombstoned) sequence count across base and
	// deltas; it replaces the static global count in the merger's
	// all-sequences early stop.  0 disables the stop.
	LiveSeqs int
	// TotalResidues is the live residue count used for E-values (0 keeps the
	// engine's base total).
	TotalResidues int64
	// NumSeqs is the total global sequence-index space (base + deltas,
	// including tombstoned holes), sizing the deduplication set.  0 keeps the
	// engine's base count.
	NumSeqs int
}

// empty reports whether the set changes anything about a base-only search.
func (x *ExtraSet) empty() bool {
	return x == nil || (len(x.Shards) == 0 && x.Drop == nil)
}

// event is one message from a shard goroutine to the merger.
type event struct {
	shard int
	kind  eventKind
	hit   core.Hit
	bound int
	stats core.Stats
	err   error
}

type eventKind uint8

const (
	evBound eventKind = iota
	evHit
	evDone
)

// Search runs the query on every shard and streams the merged hits to
// report in globally decreasing score order, exactly as core.Search does on
// a single index.  Per-shard work counters are merged into opts.Stats via
// Stats.Add; hit ranks are assigned by the merger.  Returning false from
// report cancels every shard search.
func (e *Engine) Search(query []byte, opts core.Options, report func(core.Hit) bool) error {
	if !e.mutable.empty() {
		// The directory carried compacted deltas and/or tombstones: every
		// search merges them in so the stream reflects the live corpus.
		return e.SearchExtra(query, opts, e.mutable, report)
	}
	if err := e.applyStanding(opts); err != nil {
		return err
	}
	if len(e.providers) > 0 {
		if err := opts.Scheme.Validate(); err != nil {
			return err
		}
		return e.searchProviders(query, opts, report, nil)
	}
	if e.nShards == 1 {
		// One shard is the single-index search; skip the merge machinery.
		globals := e.globals[0]
		n := 0
		if opts.Scratch == nil {
			sc := e.scratch.Get()
			opts.Scratch = sc
			defer e.scratch.Put(sc)
		}
		e.active[0].Add(1)
		defer e.active[0].Add(-1)
		return core.Search(e.indexes[0], query, opts, func(h core.Hit) bool {
			h.SeqIndex = globals[h.SeqIndex]
			n++
			h.Rank = n
			return report(h)
		})
	}
	if err := opts.Scheme.Validate(); err != nil {
		return err
	}
	if e.mode == PartitionByPrefix {
		return e.searchPrefix(query, opts, report, nil)
	}
	return e.searchSequence(query, opts, report, nil)
}

// SearchBounded is Search with a second online output: alongside the merged
// decreasing-score hit stream, bound publishes a decreasing upper bound on
// every hit the stream can still emit (the max frontier bound among the
// engine's unfinished shards).  It is the per-shard (hit, bound) contract of
// core.SearchStream lifted to the whole engine, which is exactly what a shard
// SERVER needs to re-export its locally merged stream as one provider stream
// a coordinator can merge with strict release (internal/remote).  A nil bound
// is plain Search.  Returning false from either callback cancels the search.
//
// Unlike Search, a single-shard engine also routes through the merge
// machinery here, so equal-score ties are always released in ascending global
// sequence index — the canonical merged order a coordinator reproduces.
func (e *Engine) SearchBounded(query []byte, opts core.Options, hit func(core.Hit) bool, bound func(int) bool) error {
	if bound == nil {
		return e.Search(query, opts, hit)
	}
	if err := e.applyStanding(opts); err != nil {
		return err
	}
	if err := opts.Scheme.Validate(); err != nil {
		return err
	}
	if len(e.providers) > 0 {
		return e.searchProviders(query, opts, hit, bound)
	}
	if !e.mutable.empty() {
		if e.mode == PartitionByPrefix && e.nShards > 1 {
			return e.searchPrefixExtra(query, opts, e.mutable, hit, bound)
		}
		return e.searchSequenceExtra(query, opts, e.mutable, hit, bound)
	}
	if e.mode == PartitionByPrefix && e.nShards > 1 {
		return e.searchPrefix(query, opts, hit, bound)
	}
	return e.searchSequence(query, opts, hit, bound)
}

// SearchExtra is Search with the engine layer's mutable context merged in:
// delta shards stream alongside the base shards, tombstoned sequences are
// filtered, and the live totals drive E-values and the all-sequences early
// stop.  With an empty set it is exactly Search.  Extra streams always go
// through the merge machinery (even on a single-shard engine), so the merged
// stream keeps the globally decreasing-score property and deterministic tie
// release.
func (e *Engine) SearchExtra(query []byte, opts core.Options, ext *ExtraSet, report func(core.Hit) bool) error {
	if ext.empty() {
		return e.Search(query, opts, report)
	}
	if len(e.providers) > 0 {
		return fmt.Errorf("shard: provider-backed engines have no mutable layer")
	}
	if err := e.applyStanding(opts); err != nil {
		return err
	}
	if err := opts.Scheme.Validate(); err != nil {
		return err
	}
	if e.mode == PartitionByPrefix && e.nShards > 1 {
		return e.searchPrefixExtra(query, opts, ext, report, nil)
	}
	return e.searchSequenceExtra(query, opts, ext, report, nil)
}

// applyStanding folds open-time quarantines into the query: strict mode
// refuses to serve, otherwise the query is marked degraded by them.
func (e *Engine) applyStanding(opts core.Options) error {
	if len(e.standing) == 0 {
		return nil
	}
	if opts.StrictShards {
		return fmt.Errorf("shard: %d shard(s) quarantined at open (first: %s) and StrictShards is set",
			len(e.standing), e.standing[0].Err)
	}
	if opts.Stats != nil {
		opts.Stats.Degraded = true
		opts.Stats.ShardErrors = append(opts.Stats.ShardErrors, e.standing...)
	}
	return nil
}

// shardSearchFn runs one shard's search with the prepared per-shard options,
// forwarding hits (with global sequence indexes) and frontier bounds to the
// supplied callbacks.
type shardSearchFn func(s int, shardOpts core.Options, hit func(core.Hit) bool, frontier func(bound int) bool) error

// searchSequence is the PartitionBySequence multi-shard search: independent
// per-shard indexes, disjoint sequence subsets, no deduplication needed.
func (e *Engine) searchSequence(query []byte, opts core.Options, report func(core.Hit) bool, bsink func(int) bool) error {
	bounds := make([]int, e.nShards)
	rb := e.rootBound(query, opts)
	for s := range bounds {
		bounds[s] = rb
	}
	return e.fanOutMerge(query, opts, bounds, nil, core.Stats{}, nil, report, nil, bsink,
		func(s int, shardOpts core.Options, hit func(core.Hit) bool, frontier func(int) bool) error {
			globals := e.globals[s]
			return core.SearchStream(e.indexes[s], query, shardOpts, func(h core.Hit) bool {
				h.SeqIndex = globals[h.SeqIndex]
				return hit(h)
			}, frontier)
		})
}

// rootBound is the strongest f any search over this query can hold (max
// heuristic among unpruned query positions): the initial frontier bound for
// every stream the worker pool has not scheduled yet.
func (e *Engine) rootBound(query []byte, opts core.Options) int {
	rootBound := score.NegInf
	if e.queryAl.ValidCodes(query) && opts.Scheme.Matrix.Alphabet() == e.queryAl {
		for _, hi := range core.HeuristicVector(query, opts.Scheme.Matrix) {
			if hi >= opts.MinScore && hi > rootBound {
				rootBound = hi
			}
		}
	}
	return rootBound
}

// searchSequenceExtra merges the base shards (sequence mode, or the shared
// index of a single-shard prefix engine) with the delta shards.  All streams
// are sequence-disjoint, so no deduplication is needed; with tombstones in
// play the per-shard MaxResults budget is cleared — a shard could otherwise
// exhaust it on hits the merger then drops, starving live hits it never got
// to report.
func (e *Engine) searchSequenceExtra(query []byte, opts core.Options, ext *ExtraSet, report func(core.Hit) bool, bsink func(int) bool) error {
	rb := e.rootBound(query, opts)
	bounds := make([]int, e.nShards+len(ext.Shards))
	for s := range bounds {
		bounds[s] = rb
	}
	clearMax := ext.Drop != nil
	return e.fanOutMerge(query, opts, bounds, nil, core.Stats{}, ext, report, nil, bsink,
		func(s int, shardOpts core.Options, hit func(core.Hit) bool, frontier func(int) bool) error {
			if clearMax {
				shardOpts.MaxResults = 0
			}
			idx, globals := e.index(s, ext)
			return core.SearchStream(idx, query, shardOpts, func(h core.Hit) bool {
				h.SeqIndex = globals[h.SeqIndex]
				return hit(h)
			}, frontier)
		})
}

// index resolves stream s to its index and global map: base shards first,
// then the extra (delta) shards.
func (e *Engine) index(s int, ext *ExtraSet) (core.Index, []int) {
	if s < e.nShards {
		return e.indexes[s], e.globals[s]
	}
	x := ext.Shards[s-e.nShards]
	return x.Index, x.Globals
}

// searchPrefix is the PartitionByPrefix multi-shard search: one shared
// near-root expansion (columns computed once), then one seeded searcher per
// shard over its disjoint subtrees, with sequence-level deduplication in the
// merger.
func (e *Engine) searchPrefix(query []byte, opts core.Options, report func(core.Hit) bool, bsink func(int) bool) error {
	frOpts := opts
	frOpts.KA = nil
	frOpts.Stats = nil
	// The frontier's seeds are independent copies, so a pooled scratch goes
	// back as soon as the expansion returns instead of being pinned for the
	// whole query.
	var pooled *core.Scratch
	if frOpts.Scratch == nil {
		pooled = e.scratch.Get()
		frOpts.Scratch = pooled
	}
	fr, err := core.ExpandFrontier(e.frontier, query, frOpts, e.prefixes)
	if pooled != nil {
		e.scratch.Put(pooled)
	}
	if err != nil {
		return err
	}
	dedup := e.dedups.Get()
	dedup.acquire(e.numSeqs)
	defer e.dedups.Put(dedup)
	if !e.nosteal {
		// Work stealing: seeds are claimed from a shared pool on demand
		// (steal.go) instead of searched as static batches, so a skewed query
		// cannot strand workers on drained shards.  All merger bounds start at
		// the global max seed f — any shard may claim the hottest seed.
		pool := newStealPool(fr.Seeds)
		defer func() { e.steals.Add(pool.stealCount()) }()
		return e.fanOutMerge(query, opts, stealBounds(fr.Bounds), dedup, fr.Stats, nil, report,
			func(int) bool { return pool.empty() }, bsink,
			func(s int, shardOpts core.Options, hit func(core.Hit) bool, frontier func(int) bool) error {
				shardOpts.MaxResults = 0
				return core.SearchSeedsDynamic(e.views[s], query, shardOpts, claimFunc(pool, s), hit, frontier)
			})
	}
	return e.fanOutMerge(query, opts, fr.Bounds, dedup, fr.Stats, nil, report,
		func(s int) bool { return len(fr.Seeds[s]) == 0 }, bsink,
		func(s int, shardOpts core.Options, hit func(core.Hit) bool, frontier func(int) bool) error {
			// The merger truncates the merged stream; a per-shard MaxResults
			// budget could otherwise be exhausted by hits that later
			// deduplicate away, starving the stream of hits another shard
			// never got to report.
			shardOpts.MaxResults = 0
			return core.SearchSeedsStream(e.views[s], query, shardOpts, fr.Seeds[s], hit, frontier)
		})
}

// searchPrefixExtra is searchPrefix with the delta shards merged in: the
// shared near-root expansion still runs once over the base index only, while
// each delta (its own small suffix tree) streams through core.SearchStream
// from the query root bound.  Deduplication covers the full global space —
// base sequences may repeat across prefix shards; delta sequences appear in
// exactly one stream but flow through the same set harmlessly.
func (e *Engine) searchPrefixExtra(query []byte, opts core.Options, ext *ExtraSet, report func(core.Hit) bool, bsink func(int) bool) error {
	frOpts := opts
	frOpts.KA = nil
	frOpts.Stats = nil
	var pooled *core.Scratch
	if frOpts.Scratch == nil {
		pooled = e.scratch.Get()
		frOpts.Scratch = pooled
	}
	fr, err := core.ExpandFrontier(e.frontier, query, frOpts, e.prefixes)
	if pooled != nil {
		e.scratch.Put(pooled)
	}
	if err != nil {
		return err
	}
	rb := e.rootBound(query, opts)
	baseBounds := fr.Bounds
	var pool *stealPool
	if !e.nosteal {
		pool = newStealPool(fr.Seeds)
		defer func() { e.steals.Add(pool.stealCount()) }()
		baseBounds = stealBounds(fr.Bounds)
	}
	bounds := append(append(make([]int, 0, e.nShards+len(ext.Shards)), baseBounds...), make([]int, len(ext.Shards))...)
	for s := e.nShards; s < len(bounds); s++ {
		bounds[s] = rb
	}
	n := e.numSeqs
	if ext.NumSeqs > n {
		n = ext.NumSeqs
	}
	dedup := e.dedups.Get()
	dedup.acquire(n)
	defer e.dedups.Put(dedup)
	idle := func(s int) bool { return s < e.nShards && len(fr.Seeds[s]) == 0 }
	if pool != nil {
		idle = func(s int) bool { return s < e.nShards && pool.empty() }
	}
	return e.fanOutMerge(query, opts, bounds, dedup, fr.Stats, ext, report, idle, bsink,
		func(s int, shardOpts core.Options, hit func(core.Hit) bool, frontier func(int) bool) error {
			shardOpts.MaxResults = 0
			if s < e.nShards {
				if pool != nil {
					return core.SearchSeedsDynamic(e.views[s], query, shardOpts, claimFunc(pool, s), hit, frontier)
				}
				return core.SearchSeedsStream(e.views[s], query, shardOpts, fr.Seeds[s], hit, frontier)
			}
			x := ext.Shards[s-e.nShards]
			return core.SearchStream(x.Index, query, shardOpts, func(h core.Hit) bool {
				h.SeqIndex = x.Globals[h.SeqIndex]
				return hit(h)
			}, frontier)
		})
}

// fanOutMerge is the shared fan-out/merge scaffolding of both partition
// modes: one goroutine per shard on the bounded worker pool, each adapted
// into merger events by runShardStream, merged by a merger configured with
// the per-shard initial bounds and (pooled) dedup set.  Shards the idle predicate
// (optional) marks as workless are completed immediately without spending a
// goroutine, worker-pool slot or scratch — with more prefix shards than
// prefix groups, seedless shards would otherwise queue real work behind
// no-op searcher setup.  extraStats (the prefix mode's shared frontier
// work) and the per-shard counters are merged into opts.Stats once every
// shard has unwound.  bsink, when non-nil, receives the merged stream's own
// decreasing upper bound (SearchBounded).
func (e *Engine) fanOutMerge(query []byte, opts core.Options, bounds []int, dedup *dedupSet, extraStats core.Stats, ext *ExtraSet, report func(core.Hit) bool, idle func(s int) bool, bsink func(int) bool, search shardSearchFn) error {
	// len(bounds) counts every stream: the engine's own shards plus any
	// extra (delta) shards appended after them.  The buffer holds at least
	// one event per stream, so the idle-shard completions below never block
	// before the merger starts draining.
	nStreams := len(bounds)
	events := make(chan event, 4*nStreams+16)
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.workers)
	for s := 0; s < nStreams; s++ {
		if idle != nil && idle(s) {
			events <- event{shard: s, kind: evDone}
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			defer e.releaseWorker(s, sem)
			e.acquireWorker(s, sem)
			e.runShardStream(s, opts, events, &cancelled, search)
		}(s)
	}
	m := newMerger(bounds, opts, e.total, len(query), dedup, report)
	m.onBound = bsink
	if ext != nil {
		m.drop = ext.Drop
		if ext.TotalResidues > 0 {
			m.totalRes = ext.TotalResidues
		}
		m.stopAt = ext.LiveSeqs
	}
	err := m.run(events, &cancelled)
	wg.Wait()
	if len(m.degraded) > 0 {
		e.quarantines.Add(int64(len(m.degraded)))
	}
	if opts.Stats != nil {
		opts.Stats.Add(extraStats)
		for _, st := range m.shardStats {
			opts.Stats.Add(st)
		}
		if len(m.degraded) > 0 {
			opts.Stats.Degraded = true
			opts.Stats.ShardErrors = append(opts.Stats.ShardErrors, m.degraded...)
		}
	}
	return err
}

// acquireWorker/releaseWorker wrap the worker-pool semaphore with the
// queue-depth accounting.  Extra (delta) streams share the semaphore but not
// the per-shard depth counters, which size to the engine's own shards.
func (e *Engine) acquireWorker(s int, sem chan struct{}) {
	if s < len(e.queued) {
		e.queued[s].Add(1)
		defer func() {
			e.queued[s].Add(-1)
			e.active[s].Add(1)
		}()
	}
	sem <- struct{}{}
}

func (e *Engine) releaseWorker(s int, sem chan struct{}) {
	<-sem
	if s < len(e.active) {
		e.active[s].Add(-1)
	}
}

// runShardStream executes one shard's search and adapts it into merger
// events: hits and strictly decreasing frontier bounds are forwarded until
// cancellation, then completion is signalled with the shard's work counters.
func (e *Engine) runShardStream(s int, opts core.Options, events chan<- event, cancelled *atomic.Bool, search shardSearchFn) {
	if err := faultpoint.Hit(faultpoint.SiteShardWorker, fmt.Sprintf("shard-%d", s)); err != nil {
		events <- event{shard: s, kind: evDone, err: fmt.Errorf("shard %d: %w", s, err)}
		return
	}
	var st core.Stats
	shardOpts := opts
	shardOpts.Stats = &st
	// E-values depend on the global database size; they are attached by the
	// merger, not the shard.
	shardOpts.KA = nil
	// Each shard search gets its own scratch (a Scratch serves one search at
	// a time); the caller's Scratch cannot be shared by the concurrent shard
	// goroutines.  The shard-affine slot is tried first — its buffers were
	// sized by this very shard's last search — then the shared pool.
	var sc *core.Scratch
	if s < len(e.affine) {
		sc = e.affine[s].Swap(nil)
	}
	if sc == nil {
		sc = e.scratch.Get()
	}
	shardOpts.Scratch = sc
	defer func() {
		if s < len(e.affine) && e.affine[s].CompareAndSwap(nil, sc) {
			return
		}
		e.scratch.Put(sc)
	}()
	lastBound := int(^uint(0) >> 1) // MaxInt
	err := search(s, shardOpts,
		func(h core.Hit) bool {
			if cancelled.Load() {
				return false
			}
			h.Rank = 0
			events <- event{shard: s, kind: evHit, hit: h}
			return true
		},
		func(bound int) bool {
			if cancelled.Load() {
				return false
			}
			if bound < lastBound {
				lastBound = bound
				events <- event{shard: s, kind: evBound, bound: bound}
			}
			return true
		})
	events <- event{shard: s, kind: evDone, stats: st, err: err}
}

// SearchAll runs Search and collects every hit.
func (e *Engine) SearchAll(query []byte, opts core.Options) ([]core.Hit, error) {
	var hits []core.Hit
	err := e.Search(query, opts, func(h core.Hit) bool {
		hits = append(hits, h)
		return true
	})
	return hits, err
}
