// Package shard runs one OASIS searcher per database partition on a bounded
// worker pool and merges the per-shard hit streams into one globally
// score-ordered stream.
//
// Each shard is an independently built suffix-tree index over a subset of
// the sequences (seq.PartitionDatabase balances the subsets by residue
// count).  A shard's searcher reports its hits in decreasing score order and
// additionally publishes a decreasing frontier bound — the f-value of the
// node at the head of its priority queue, which caps every score the shard
// can still report (core.SearchStream).  The merger may therefore release a
// buffered hit as soon as its score is >= every other shard's latest bound,
// which preserves the paper's online decreasing-score property end to end
// while keeping first-hit latency low: no shard has to finish before the
// strongest hits start flowing.
//
// Hits with equal scores may interleave differently from run to run (the
// order depends on which shard surfaces them first); the stream is always
// non-increasing in score and always contains exactly the hits the
// single-index search reports.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/seq"
)

// Options configures a sharded engine.
type Options struct {
	// Shards is the number of database partitions (default 1; capped at
	// the number of sequences).
	Shards int
	// Workers bounds how many shard searches run concurrently (default:
	// one worker per shard).
	Workers int
}

// Engine is a sharded OASIS search engine over one logical database.  It is
// safe for concurrent use: the indexes are immutable after construction and
// every search draws its scratch buffers from a shared bounded free list, so
// a long-running engine (internal/engine) can multiplex many queries over
// one warm Engine without per-query allocation.
type Engine struct {
	indexes []*core.MemoryIndex
	globals [][]int // shard-local sequence index -> global index
	workers int
	total   int64 // global residue count, for E-values
	queryAl *seq.Alphabet
	// scratch recycles per-shard searcher state across queries.
	scratch *bufferpool.FreeList[*core.Scratch]
}

// NewEngine partitions db into opts.Shards shards balanced by residue count
// and builds one in-memory suffix-tree index per shard.
func NewEngine(db *seq.Database, opts Options) (*Engine, error) {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	part, err := seq.PartitionDatabase(db, opts.Shards)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		indexes: make([]*core.MemoryIndex, part.NumShards()),
		globals: part.GlobalIndex,
		total:   db.TotalResidues(),
		queryAl: db.Alphabet(),
	}
	for s, shardDB := range part.Shards {
		idx, err := core.BuildMemoryIndex(shardDB)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		e.indexes[s] = idx
	}
	e.workers = opts.Workers
	if e.workers < 1 || e.workers > len(e.indexes) {
		e.workers = len(e.indexes)
	}
	// Hold enough idle scratches for a few concurrent queries, each using
	// one scratch per shard search.
	e.scratch = bufferpool.NewFreeList(4*len(e.indexes), core.NewScratch)
	return e, nil
}

// ScratchStats reports how often shard searches reused pooled scratch
// buffers instead of allocating fresh ones.
func (e *Engine) ScratchStats() bufferpool.FreeListStats { return e.scratch.Stats() }

// NumShards returns the number of partitions.
func (e *Engine) NumShards() int { return len(e.indexes) }

// Workers returns the concurrency bound for shard searches.
func (e *Engine) Workers() int { return e.workers }

// Shard exposes one shard's index (tests and diagnostics).
func (e *Engine) Shard(i int) core.Index { return e.indexes[i] }

// event is one message from a shard goroutine to the merger.
type event struct {
	shard int
	kind  eventKind
	hit   core.Hit
	bound int
	stats core.Stats
	err   error
}

type eventKind uint8

const (
	evBound eventKind = iota
	evHit
	evDone
)

// Search runs the query on every shard and streams the merged hits to
// report in globally decreasing score order, exactly as core.Search does on
// a single index.  Per-shard work counters are merged into opts.Stats via
// Stats.Add; hit ranks are assigned by the merger.  Returning false from
// report cancels every shard search.
func (e *Engine) Search(query []byte, opts core.Options, report func(core.Hit) bool) error {
	if len(e.indexes) == 1 {
		// One shard is the single-index search; skip the merge machinery.
		globals := e.globals[0]
		n := 0
		if opts.Scratch == nil {
			sc := e.scratch.Get()
			opts.Scratch = sc
			defer e.scratch.Put(sc)
		}
		return core.Search(e.indexes[0], query, opts, func(h core.Hit) bool {
			h.SeqIndex = globals[h.SeqIndex]
			n++
			h.Rank = n
			return report(h)
		})
	}
	if err := opts.Scheme.Validate(); err != nil {
		return err
	}

	// Every shard starts from the same root frontier: the strongest f any
	// search over this query can hold (max heuristic among unpruned query
	// positions).  Using it as the initial bound lets the merger reason
	// about shards the worker pool has not scheduled yet.
	rootBound := score.NegInf
	if e.queryAl.ValidCodes(query) && opts.Scheme.Matrix.Alphabet() == e.queryAl {
		for _, hi := range core.HeuristicVector(query, opts.Scheme.Matrix) {
			if hi >= opts.MinScore && hi > rootBound {
				rootBound = hi
			}
		}
	}

	nShards := len(e.indexes)
	events := make(chan event, 4*nShards+16)
	var cancelled atomic.Bool
	sem := make(chan struct{}, e.workers)
	var wg sync.WaitGroup
	for s := 0; s < nShards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			e.runShard(s, query, opts, events, &cancelled)
		}(s)
	}

	m := newMerger(nShards, rootBound, opts, e.total, len(query), report)
	err := m.run(events, &cancelled)
	wg.Wait()
	if opts.Stats != nil {
		for _, st := range m.shardStats {
			opts.Stats.Add(st)
		}
	}
	return err
}

// runShard executes one shard's search, remapping hits to global sequence
// indexes and forwarding hits, frontier bounds and completion to the merger.
func (e *Engine) runShard(s int, query []byte, opts core.Options, events chan<- event, cancelled *atomic.Bool) {
	globals := e.globals[s]
	var st core.Stats
	shardOpts := opts
	shardOpts.Stats = &st
	// E-values depend on the global database size; they are attached by the
	// merger, not the shard.
	shardOpts.KA = nil
	// Each shard search gets its own pooled scratch (a Scratch serves one
	// search at a time); the caller's Scratch cannot be shared by the
	// concurrent shard goroutines.
	sc := e.scratch.Get()
	shardOpts.Scratch = sc
	defer e.scratch.Put(sc)
	lastBound := int(^uint(0) >> 1) // MaxInt
	err := core.SearchStream(e.indexes[s], query, shardOpts,
		func(h core.Hit) bool {
			if cancelled.Load() {
				return false
			}
			h.SeqIndex = globals[h.SeqIndex]
			h.Rank = 0
			events <- event{shard: s, kind: evHit, hit: h}
			return true
		},
		func(bound int) bool {
			if cancelled.Load() {
				return false
			}
			if bound < lastBound {
				lastBound = bound
				events <- event{shard: s, kind: evBound, bound: bound}
			}
			return true
		})
	events <- event{shard: s, kind: evDone, stats: st, err: err}
}

// SearchAll runs Search and collects every hit.
func (e *Engine) SearchAll(query []byte, opts core.Options) ([]core.Hit, error) {
	var hits []core.Hit
	err := e.Search(query, opts, func(h core.Hit) bool {
		hits = append(hits, h)
		return true
	})
	return hits, err
}
