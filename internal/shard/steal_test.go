package shard

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/diskst"
	"repro/internal/score"
	"repro/internal/seq"
)

// seedWithF builds a frontier seed carrying only the fields the steal pool
// looks at (f for ordering and limit checks, cost for victim choice).
func seedWithF(f int, cost int64) core.Seed {
	return core.NewTestSeed(f, cost)
}

// TestStealPoolMechanics pins the claim rules deterministically, without any
// searcher or goroutine in play: owners drain their own window hottest-first
// and only when the seed outranks their queue, thieves fire only from an
// empty queue against seeds strictly below their limit, and the victim is
// always the one with the most estimated work remaining.
func TestStealPoolMechanics(t *testing.T) {
	pool := newStealPool([][]core.Seed{
		{seedWithF(5, 10), seedWithF(9, 10)},                // shard 0 (sorted to 9,5)
		{seedWithF(7, 100), seedWithF(3, 100)},              // shard 1: costliest victim
		{seedWithF(4, 1), seedWithF(2, 1), seedWithF(8, 1)}, // shard 2
	})

	// Owner claims are hottest-first and gated on the queue top.
	if s := pool.claimFor(0, score.NegInf, 100); s == nil || s.F() != 9 {
		t.Fatalf("own claim = %+v, want f=9", s)
	}
	if s := pool.claimFor(0, 7, 100); s != nil {
		t.Fatalf("own seed f=5 claimed past queue top 7: %+v", s)
	}
	if s := pool.claimFor(0, 5, 100); s == nil || s.F() != 5 {
		t.Fatalf("own claim at equal f = %+v, want f=5", s)
	}

	// A non-empty queue never steals, whatever the limit.
	if s := pool.claimFor(0, 4, 100); s != nil {
		t.Fatalf("stole with a non-empty queue: %+v", s)
	}

	// Idle with limit 3: shard 1's coldest is f=3 (not strictly below), shard
	// 2's coldest is f=2 — only shard 2 qualifies despite its lower cost.
	if s := pool.claimFor(0, score.NegInf, 3); s == nil || s.F() != 2 {
		t.Fatalf("strict-limit steal = %+v, want f=2 from shard 2", s)
	}
	// Idle with a high limit: the costliest victim (shard 1) loses its
	// coldest seed first.
	if s := pool.claimFor(0, score.NegInf, 100); s == nil || s.F() != 3 {
		t.Fatalf("costliest-victim steal = %+v, want f=3 from shard 1", s)
	}
	if got := pool.stealCount(); got != 2 {
		t.Fatalf("stealCount = %d, want 2", got)
	}
	// Remaining: shard 1 {7}, shard 2 {8,4}. Shard 1 drains its own, then
	// everything else is stolen, and the pool reports empty exactly once all
	// seeds are claimed.
	if s := pool.claimFor(1, score.NegInf, 100); s == nil || s.F() != 7 {
		t.Fatalf("shard 1 own claim = %+v, want f=7", s)
	}
	if pool.empty() {
		t.Fatal("pool empty with shard 2's seeds unclaimed")
	}
	for _, want := range []int{4, 8} {
		if s := pool.claimFor(1, score.NegInf, 100); s == nil || s.F() != want {
			t.Fatalf("drain steal = %+v, want f=%d", s, want)
		}
	}
	if !pool.empty() {
		t.Fatal("pool not empty after every seed was claimed")
	}
	if s := pool.claimFor(1, score.NegInf, 100); s != nil {
		t.Fatalf("claim from empty pool = %+v", s)
	}
	if got := pool.stealCount(); got != 4 {
		t.Fatalf("stealCount = %d, want 4", got)
	}
}

// normalizeHits strips alignment endpoints: with stealing, which member of a
// sequence's co-optimal alignment tie set survives deduplication is
// timing-dependent (steal.go), while everything a client ranks on —
// sequence, id, score, E-value, rank — is identical to the no-steal stream.
func normalizeHits(hits []core.Hit) []core.Hit {
	out := make([]core.Hit, len(hits))
	for i, h := range hits {
		h.QueryEnd, h.TargetEnd = 0, 0
		out[i] = h
	}
	return out
}

func requireSameStream(t *testing.T, label string, got, want []core.Hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hits, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: hit %d differs:\n got %+v\nwant %+v", label, i, got[i], want[i])
		}
	}
}

// TestStealingStreamEquivalence is the stealing on/off differential: across
// random corpora, shard/worker counts, alphabets and query knobs, an engine
// with work stealing must emit exactly the stream its NoSteal twin emits —
// same sequences, ids, scores, E-values and ranks, in the same order — and
// spend the same total column work, for both in-memory and on-disk prefix
// engines.  (Sequence-partitioned engines have no seeds to steal; the flag
// must be a byte-exact no-op there.)
func TestStealingStreamEquivalence(t *testing.T) {
	cases := map[string]struct {
		a      *seq.Alphabet
		scheme score.Scheme
	}{
		"dna":     {seq.DNA, score.MustScheme(score.UnitDNA(), -1)},
		"protein": {seq.Protein, score.MustScheme(score.ByName("PAM30"), -10)},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(907))
			letters := cfg.a.Letters()
			for trial := 0; trial < 15; trial++ {
				db := randomShardDB(t, rng, cfg.a, 4+rng.Intn(24), 90)
				base := Options{
					Shards:    2 + rng.Intn(6),
					Workers:   1 + rng.Intn(4),
					Partition: PartitionByPrefix,
				}
				noSteal := base
				noSteal.NoSteal = true
				stealEng, err := NewEngine(db, base)
				if err != nil {
					t.Fatal(err)
				}
				noStealEng, err := NewEngine(db, noSteal)
				if err != nil {
					t.Fatal(err)
				}
				for q := 0; q < 3; q++ {
					qb := make([]byte, 3+rng.Intn(14))
					for i := range qb {
						qb[i] = letters[rng.Intn(len(letters))]
					}
					query := cfg.a.MustEncode(string(qb))
					opts := core.Options{Scheme: cfg.scheme, MinScore: 1 + rng.Intn(10)}
					if params, err := score.Params(cfg.scheme.Matrix, nil); err == nil && rng.Intn(2) == 0 {
						ka := params
						opts.KA = &ka
					}
					var stealStats, plainStats core.Stats
					sOpts, pOpts := opts, opts
					sOpts.Stats, pOpts.Stats = &stealStats, &plainStats
					got, err := stealEng.SearchAll(query, sOpts)
					if err != nil {
						t.Fatal(err)
					}
					want, err := noStealEng.SearchAll(query, pOpts)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("trial %d query %d (%d shards, %d workers)",
						trial, q, base.Shards, base.Workers)
					requireSameStream(t, label, normalizeHits(got), normalizeHits(want))
					// The expansion set is a property of the f-thresholds, not
					// of who searches which subtree: total column work must
					// not change when seeds move between workers.  (Unless
					// every sequence was emitted — then the merger's early
					// stop cancels the shards mid-flight at a point that
					// depends on scheduling, with or without stealing.)
					if len(got) < db.NumSequences() && stealStats.ColumnsExpanded != plainStats.ColumnsExpanded {
						t.Fatalf("%s: stealing expanded %d columns, static split %d",
							label, stealStats.ColumnsExpanded, plainStats.ColumnsExpanded)
					}
					if noStealEng.Steals() != 0 {
						t.Fatalf("%s: NoSteal engine recorded %d steals", label, noStealEng.Steals())
					}
				}
				stealEng.Close()
				noStealEng.Close()
			}
		})
	}
}

// TestStealingDiskEngineEquivalence runs the same on/off differential over a
// prefix-partitioned index directory: DiskOptions.NoSteal must reach the
// engine, and the disk-backed stolen stream must equal its static twin.
func TestStealingDiskEngineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	db := randomShardDB(t, rng, seq.DNA, 20, 80)
	dir := t.TempDir()
	if _, _, err := diskst.BuildSharded(dir, db, diskst.ShardedBuildOptions{
		Shards: 4, PartitionByPrefix: true,
	}); err != nil {
		t.Fatal(err)
	}
	stealEng, err := OpenDiskEngine(dir, DiskOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer stealEng.Close()
	noStealEng, err := OpenDiskEngine(dir, DiskOptions{Workers: 2, NoSteal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer noStealEng.Close()
	letters := seq.DNA.Letters()
	for q := 0; q < 8; q++ {
		qb := make([]byte, 4+rng.Intn(10))
		for i := range qb {
			qb[i] = letters[rng.Intn(len(letters))]
		}
		query := seq.DNA.MustEncode(string(qb))
		opts := core.Options{Scheme: score.MustScheme(score.UnitDNA(), -1), MinScore: 2 + rng.Intn(6)}
		got, err := stealEng.SearchAll(query, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := noStealEng.SearchAll(query, opts)
		if err != nil {
			t.Fatal(err)
		}
		requireSameStream(t, fmt.Sprintf("disk query %d", q), normalizeHits(got), normalizeHits(want))
	}
}

// skewedStealDB builds a corpus whose query work is concentrated in one
// prefix group: every sequence is rich in 'A' runs, so for an all-A query
// nearly all viable subtrees hang under the 'A' prefix and the static
// suffix-count split leaves the other shards' workers idle almost
// immediately.
func skewedStealDB(t *testing.T, rng *rand.Rand, nSeqs int) *seq.Database {
	t.Helper()
	letters := []byte("CGT")
	strs := make([]string, nSeqs)
	for i := range strs {
		b := make([]byte, 0, 64)
		for len(b) < 48 {
			run := 4 + rng.Intn(12)
			for j := 0; j < run; j++ {
				b = append(b, 'A')
			}
			b = append(b, letters[rng.Intn(len(letters))])
		}
		strs[i] = string(b)
	}
	db, err := seq.DatabaseFromStrings(seq.DNA, strs...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestStealingSkewedQuery drives the scenario stealing exists for: a query
// whose work lives almost entirely in one prefix shard.  Workers that drain
// their own (tiny) share must pick up the hot shard's pending seeds — the
// engine's steal counter has to move — and the stream must still equal the
// static split's.
func TestStealingSkewedQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := skewedStealDB(t, rng, 24)
	stealEng, err := NewEngine(db, Options{Shards: 8, Workers: 2, Partition: PartitionByPrefix})
	if err != nil {
		t.Fatal(err)
	}
	defer stealEng.Close()
	noStealEng, err := NewEngine(db, Options{Shards: 8, Workers: 2, Partition: PartitionByPrefix, NoSteal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer noStealEng.Close()
	opts := core.Options{Scheme: score.MustScheme(score.UnitDNA(), -1), MinScore: 4}
	for q, qs := range []string{"AAAAAAAAAA", "AAAAAAAAAAAAAAAA", "AAAAACAAAAA"} {
		query := seq.DNA.MustEncode(qs)
		got, err := stealEng.SearchAll(query, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := noStealEng.SearchAll(query, opts)
		if err != nil {
			t.Fatal(err)
		}
		requireSameStream(t, fmt.Sprintf("skewed query %d", q), normalizeHits(got), normalizeHits(want))
	}
	if stealEng.Steals() == 0 {
		t.Fatal("skewed queries produced no steals: workers idled on drained shards")
	}
	if noStealEng.Steals() != 0 {
		t.Fatalf("NoSteal engine recorded %d steals", noStealEng.Steals())
	}
}

// TestStealingConcurrentStress multiplexes concurrent queries over one
// stealing engine (shared steal-free lists, shard-affine scratch slots, the
// seed pool) and checks every stream against a per-query reference; run with
// -race this is the stealing path's data-race harness.
func TestStealingConcurrentStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7717))
	db := randomShardDB(t, rng, seq.DNA, 24, 90)
	eng, err := NewEngine(db, Options{Shards: 6, Workers: 3, Partition: PartitionByPrefix})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	scheme := score.MustScheme(score.UnitDNA(), -1)
	letters := seq.DNA.Letters()
	type job struct {
		query []byte
		opts  core.Options
		want  []core.Hit
	}
	jobs := make([]job, 6)
	for i := range jobs {
		qb := make([]byte, 4+rng.Intn(10))
		for j := range qb {
			qb[j] = letters[rng.Intn(len(letters))]
		}
		j := job{query: seq.DNA.MustEncode(string(qb)), opts: core.Options{Scheme: scheme, MinScore: 2 + i%5}}
		want, err := eng.SearchAll(j.query, j.opts)
		if err != nil {
			t.Fatal(err)
		}
		j.want = normalizeHits(want)
		jobs[i] = j
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				j := jobs[(g+rep)%len(jobs)]
				got, err := eng.SearchAll(j.query, j.opts)
				if err != nil {
					errs <- err
					return
				}
				got = normalizeHits(got)
				if len(got) != len(j.want) {
					errs <- fmt.Errorf("goroutine %d rep %d: %d hits, want %d", g, rep, len(got), len(j.want))
					return
				}
				for i := range got {
					if got[i] != j.want[i] {
						errs <- fmt.Errorf("goroutine %d rep %d: hit %d = %+v, want %+v", g, rep, i, got[i], j.want[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
