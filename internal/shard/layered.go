package shard

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/seq"
)

// layeredCatalog is the global catalog over base + delta layers: global
// sequence indexes start with the base corpus and continue densely through
// each layer in order, matching the delta records' global maps.  Tombstoned
// sequences remain addressable (hits streamed before a delete can still
// recover alignments).
type layeredCatalog struct {
	base    core.Catalog
	baseN   int
	baseRes int64
	// concat starts: base occupies [0, baseConcat); layer i occupies
	// [starts[i], starts[i]+span) in the virtual concatenated view, where
	// every sequence is followed by one terminator.
	baseConcat int64
	layers     []core.Catalog
	offsets    []int
	starts     []int64
	numSeqs    int
	totalRes   int64
	concat     int64
}

// NewLayeredCatalog builds the global catalog over a base catalog plus
// delta layers appended in order: exactly the numbering the manifest's
// DeltaRecord.GlobalIndex maps and the engine layer's memtable use.
func NewLayeredCatalog(base core.Catalog, baseN int, baseRes int64, extras []ExtraShard) core.Catalog {
	lc := &layeredCatalog{
		base: base, baseN: baseN, baseRes: baseRes,
		baseConcat: baseRes + int64(baseN),
	}
	n, concat, total := baseN, lc.baseConcat, baseRes
	for _, x := range extras {
		cat := x.Index.Catalog()
		lc.layers = append(lc.layers, cat)
		lc.offsets = append(lc.offsets, n)
		lc.starts = append(lc.starts, concat)
		n += cat.NumSequences()
		total += cat.TotalResidues()
		concat += cat.TotalResidues() + int64(cat.NumSequences())
	}
	lc.numSeqs, lc.totalRes, lc.concat = n, total, concat
	return lc
}

// resolve maps a global sequence index to its owning catalog and local index
// (nil when the index falls into a quarantined-shard hole).
func (c *layeredCatalog) resolve(g int) (core.Catalog, int) {
	if g < 0 || g >= c.numSeqs {
		return nil, 0
	}
	if g < c.baseN {
		if g >= c.base.NumSequences() {
			return nil, 0 // degraded base: hole past the union catalog
		}
		return c.base, g
	}
	for i := len(c.layers) - 1; i >= 0; i-- {
		if g >= c.offsets[i] {
			return c.layers[i], g - c.offsets[i]
		}
	}
	return nil, 0
}

func (c *layeredCatalog) Alphabet() *seq.Alphabet { return c.base.Alphabet() }
func (c *layeredCatalog) NumSequences() int       { return c.numSeqs }
func (c *layeredCatalog) TotalResidues() int64    { return c.totalRes }

func (c *layeredCatalog) SequenceID(g int) string {
	cat, i := c.resolve(g)
	if cat == nil {
		return ""
	}
	return cat.SequenceID(i)
}

func (c *layeredCatalog) SequenceLength(g int) int {
	cat, i := c.resolve(g)
	if cat == nil {
		return 0
	}
	return cat.SequenceLength(i)
}

func (c *layeredCatalog) Residues(g int) ([]byte, error) {
	cat, i := c.resolve(g)
	if cat == nil {
		return nil, fmt.Errorf("shard: sequence index %d unavailable", g)
	}
	return cat.Residues(i)
}

func (c *layeredCatalog) Locate(pos int64) (int, int64, error) {
	if pos < 0 || pos >= c.concat {
		return 0, 0, fmt.Errorf("shard: position %d out of range", pos)
	}
	if pos < c.baseConcat {
		return c.base.Locate(pos)
	}
	for i := len(c.layers) - 1; i >= 0; i-- {
		if pos >= c.starts[i] {
			local, off, err := c.layers[i].Locate(pos - c.starts[i])
			if err != nil {
				return 0, 0, err
			}
			return c.offsets[i] + local, off, nil
		}
	}
	return 0, 0, fmt.Errorf("shard: position %d out of range", pos)
}

var _ core.Catalog = (*layeredCatalog)(nil)
