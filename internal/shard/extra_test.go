package shard

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/seq"
)

// buildExtraCase splits a random corpus into a base engine plus delta
// sequences (global indexes appended after the base) and a tombstone subset,
// and returns the matching live (rebuilt-from-scratch) database.
type extraCase struct {
	base     *Engine
	ext      *ExtraSet
	liveDB   *seq.Database
	liveIDs  map[string]bool
	tombIdx  map[int]bool
	numBase  int
	numDelta int
}

func buildExtraCase(t *testing.T, rng *rand.Rand, mode PartitionMode, shards int) *extraCase {
	t.Helper()
	full := randomShardDB(t, rng, seq.Protein, 8+rng.Intn(10), 60)
	all := full.Sequences()
	nBase := 1 + rng.Intn(len(all)-1)
	baseDB := seq.MustDatabase(seq.Protein, all[:nBase])
	base, err := NewEngine(baseDB, Options{Shards: shards, Partition: mode})
	if err != nil {
		t.Fatal(err)
	}
	deltaSeqs := all[nBase:]
	tomb := map[int]bool{}
	for g := 0; g < len(all); g++ {
		if rng.Intn(4) == 0 {
			tomb[g] = true
		}
	}
	var live []seq.Sequence
	liveIDs := map[string]bool{}
	var liveRes int64
	for g, s := range all {
		if !tomb[g] {
			live = append(live, s)
			liveIDs[s.ID] = true
			liveRes += int64(len(s.Residues))
		}
	}
	ext := &ExtraSet{
		LiveSeqs:      len(live),
		TotalResidues: liveRes,
		NumSeqs:       len(all),
	}
	if len(tomb) > 0 {
		ext.Drop = func(i int) bool { return tomb[i] }
	}
	if len(deltaSeqs) > 0 {
		deltaDB := seq.MustDatabase(seq.Protein, deltaSeqs)
		idx, err := core.BuildMemoryIndex(deltaDB)
		if err != nil {
			t.Fatal(err)
		}
		globals := make([]int, len(deltaSeqs))
		for i := range globals {
			globals[i] = nBase + i
		}
		ext.Shards = append(ext.Shards, ExtraShard{Index: idx, Globals: globals})
	}
	return &extraCase{
		base: base, ext: ext,
		liveDB:  seq.MustDatabase(seq.Protein, live),
		liveIDs: liveIDs, tombIdx: tomb,
		numBase: nBase, numDelta: len(deltaSeqs),
	}
}

// TestSearchExtraEquivalence: across random corpora, partition modes, shard
// counts and tombstone subsets, (base + delta + tombstones) through
// SearchExtra must produce the same (sequence, score, E-value) multiset in
// non-increasing score order as a plain engine rebuilt over the live corpus.
func TestSearchExtraEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(733))
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	for trial := 0; trial < 30; trial++ {
		mode := PartitionBySequence
		if trial%2 == 1 {
			mode = PartitionByPrefix
		}
		shards := 1 + rng.Intn(4)
		c := buildExtraCase(t, rng, mode, shards)
		rebuilt, err := NewEngine(c.liveDB, Options{Shards: shards, Partition: mode})
		if err != nil {
			t.Fatal(err)
		}
		query := []byte(nil)
		for len(query) == 0 {
			s := c.liveDB.Sequence(rng.Intn(c.liveDB.NumSequences()))
			if len(s.Residues) > 0 {
				n := 4 + rng.Intn(12)
				if n > len(s.Residues) {
					n = len(s.Residues)
				}
				off := rng.Intn(len(s.Residues) - n + 1)
				query = s.Residues[off : off+n]
			}
		}
		opts := core.Options{Scheme: scheme, MinScore: 10 + rng.Intn(15)}
		var got []core.Hit
		if err := c.base.SearchExtra(query, opts, c.ext, func(h core.Hit) bool {
			got = append(got, h)
			return true
		}); err != nil {
			t.Fatalf("trial %d: SearchExtra: %v", trial, err)
		}
		want, err := rebuilt.SearchAll(query, opts)
		if err != nil {
			t.Fatal(err)
		}
		checkOrderAndRanks(t, got, "extra")
		for _, h := range got {
			if c.tombIdx[h.SeqIndex] {
				t.Fatalf("trial %d: tombstoned sequence %d (%s) leaked into the stream", trial, h.SeqIndex, h.SeqID)
			}
			if !c.liveIDs[h.SeqID] {
				t.Fatalf("trial %d: hit for unknown sequence %q", trial, h.SeqID)
			}
		}
		// SeqIndex values differ between the two numberings; compare by ID.
		type k struct {
			id    string
			score int
		}
		gm, wm := map[k]int{}, map[k]int{}
		for _, h := range got {
			gm[k{h.SeqID, h.Score}]++
		}
		for _, h := range want {
			wm[k{h.SeqID, h.Score}]++
		}
		if len(gm) != len(wm) {
			t.Fatalf("trial %d (mode=%v shards=%d): %d distinct hits vs rebuilt %d", trial, mode, shards, len(gm), len(wm))
		}
		for kk, n := range wm {
			if gm[kk] != n {
				t.Fatalf("trial %d: hit %v count %d vs rebuilt %d", trial, kk, gm[kk], n)
			}
		}
	}
}

// TestSearchExtraEmptySetIsPlainSearch: a nil/empty ExtraSet must be exactly
// Search, including on the single-shard fast path.
func TestSearchExtraEmptySetIsPlainSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := randomShardDB(t, rng, seq.Protein, 10, 50)
	eng, err := NewEngine(db, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	query := db.Sequence(0).Residues
	if len(query) > 12 {
		query = query[:12]
	}
	opts := core.Options{Scheme: scheme, MinScore: 12}
	want, err := eng.SearchAll(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	var got []core.Hit
	if err := eng.SearchExtra(query, opts, nil, func(h core.Hit) bool {
		got = append(got, h)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("empty extra set: %d hits vs %d from Search", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("empty extra set: hit %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestMergerLiveSequenceEarlyStop is the satellite regression for the
// all-sequences early stop: with one sequence tombstoned, the stop count must
// be the LIVE sequence count — against the static global count the merger
// would never trigger the stop (cancelled stays false) and every shard would
// run to completion.
func TestMergerLiveSequenceEarlyStop(t *testing.T) {
	bounds := []int{100, 100}
	dedup := &dedupSet{}
	dedup.acquire(3)
	var emitted []core.Hit
	m := newMerger(bounds, core.Options{}, 1000, 10, dedup, func(h core.Hit) bool {
		emitted = append(emitted, h)
		return true
	})
	m.drop = func(i int) bool { return i == 1 }
	m.stopAt = 2 // live sequences: 3 global minus 1 tombstone
	events := make(chan event, 16)
	var cancelled atomic.Bool
	events <- event{shard: 1, kind: evBound, bound: 0}
	events <- event{shard: 0, kind: evHit, hit: core.Hit{SeqIndex: 0, Score: 90}}
	events <- event{shard: 0, kind: evHit, hit: core.Hit{SeqIndex: 1, Score: 80}}
	events <- event{shard: 0, kind: evHit, hit: core.Hit{SeqIndex: 2, Score: 70}}
	events <- event{shard: 0, kind: evDone}
	events <- event{shard: 1, kind: evDone}
	if err := m.run(events, &cancelled); err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 2 || emitted[0].SeqIndex != 0 || emitted[1].SeqIndex != 2 {
		t.Fatalf("emitted %+v, want live sequences 0 and 2", emitted)
	}
	if !cancelled.Load() {
		t.Fatal("all live sequences emitted but the early stop never cancelled the shards (stop count not derived from live sequences)")
	}
}

// TestSearchExtraDeleteTerminates: engine-level version of the regression —
// delete one sequence from a prefix-sharded corpus where every sequence
// matches, and assert the merged stream still terminates with exactly the
// live sequences.
func TestSearchExtraDeleteTerminates(t *testing.T) {
	motif := "DKDGDGCITTKELGTV"
	strs := make([]string, 6)
	for i := range strs {
		strs[i] = "AAAA" + motif + "GGGG"
	}
	db, err := seq.DatabaseFromStrings(seq.Protein, strs...)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(db, Options{Shards: 3, Partition: PartitionByPrefix})
	if err != nil {
		t.Fatal(err)
	}
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	ext := &ExtraSet{
		Drop:          func(i int) bool { return i == 2 },
		LiveSeqs:      db.NumSequences() - 1,
		TotalResidues: db.TotalResidues() - int64(len(strs[2])),
		NumSeqs:       db.NumSequences(),
	}
	var got []core.Hit
	if err := eng.SearchExtra([]byte(seq.Protein.MustEncode(motif)), core.Options{Scheme: scheme, MinScore: 20}, ext, func(h core.Hit) bool {
		got = append(got, h)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != db.NumSequences()-1 {
		t.Fatalf("got %d hits, want %d live sequences", len(got), db.NumSequences()-1)
	}
	for _, h := range got {
		if h.SeqIndex == 2 {
			t.Fatal("deleted sequence leaked into the stream")
		}
	}
}
