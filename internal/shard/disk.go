package shard

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/diskst"
)

// DiskOptions configures OpenDiskEngine.
type DiskOptions struct {
	// Workers bounds concurrent shard searches per query (default: one per
	// shard), as in Options.
	Workers int
	// PoolBytesPerShard is each shard's buffer-pool capacity in bytes
	// (default diskst.DefaultPoolBytesPerShard).
	PoolBytesPerShard int64
	// AllowDegraded admits a sequence-partitioned directory whose shard
	// file(s) fail to open: the failed shards are quarantined and every
	// search reports Degraded (see diskst.OpenOptions.AllowDegraded).
	AllowDegraded bool
	// WarmupPages controls open-time buffer-pool warm-up per shard
	// (0 = diskst.DefaultWarmupPages, negative = disabled).
	WarmupPages int
	// BaseOnly opens only the base shards, ignoring any delta layers and
	// tombstones the manifest records.  The warm engine layer sets it: it
	// reopens the mutable layer itself so writes can continue; every other
	// consumer leaves it false and gets the manifest's full live corpus.
	BaseOnly bool
	// NoSteal disables work stealing between prefix shards, as in
	// Options.NoSteal.
	NoSteal bool
}

// OpenDiskEngine opens a sharded on-disk index directory (written by
// diskst.BuildSharded / oasis-build -shards) and assembles a sharded engine
// over it: every shard searches its own diskst.Index through its own buffer
// pool, so a query's shard fan-out also fans out page I/O, and the engine
// never needs the source database in memory.  Delta layers and tombstones
// recorded by the manifest (compactions of the engine layer's mutable
// memtable) are opened too and folded into every search, so the engine
// serves the manifest's live corpus — unless DiskOptions.BaseOnly asks for
// the base generation alone.  The returned engine owns the index files; call
// Close when done serving.
func OpenDiskEngine(dir string, opts DiskOptions) (*Engine, error) {
	disk, err := diskst.OpenSharded(dir, diskst.OpenOptions{
		PoolBytesPerShard: opts.PoolBytesPerShard,
		AllowDegraded:     opts.AllowDegraded,
		WarmupPages:       opts.WarmupPages,
	})
	if err != nil {
		return nil, err
	}
	set := IndexSet{Closers: []io.Closer{disk}, Standing: disk.Quarantined}
	switch disk.Manifest.Partition {
	case diskst.PartitionPrefix:
		set.Partition = PartitionByPrefix
		set.Views = make([]core.Index, len(disk.Indexes))
		for i, idx := range disk.Indexes {
			set.Views[i] = idx
		}
		// Frontier is nil for single-shard directories (no shared expansion
		// ever runs); assigning a typed nil into the interface would defeat
		// NewEngineFromSet's Views[0] fallback.
		if disk.Frontier != nil {
			set.Frontier = disk.Frontier
		}
		set.Prefixes = disk.Prefixes
	default:
		set.Partition = PartitionBySequence
		// Quarantined shards hold nil entries; the engine runs over the
		// survivors, whose Globals maps keep the original global numbering
		// (the union catalog tolerates the holes).
		for i, idx := range disk.Indexes {
			if idx == nil {
				continue
			}
			set.Indexes = append(set.Indexes, idx)
			set.Globals = append(set.Globals, disk.Manifest.GlobalIndex[i])
		}
	}
	e, err := NewEngineFromSet(set, Options{Workers: opts.Workers, NoSteal: opts.NoSteal})
	if err != nil {
		disk.Close()
		return nil, err
	}
	e.disk = disk
	if !opts.BaseOnly {
		if err := e.attachManifestDeltas(dir, opts); err != nil {
			e.Close()
			return nil, err
		}
	}
	return e, nil
}

// attachManifestDeltas folds the manifest's compacted delta layers and
// tombstones into a standing mutable set, so every search over the reopened
// engine serves the live corpus the manifest describes — compacted inserts
// included, deleted sequences filtered — exactly like the engine that wrote
// it.  The engine's catalog becomes the layered base+delta catalog (delta
// hits resolve IDs, E-values use live totals).
func (e *Engine) attachManifestDeltas(dir string, opts DiskOptions) error {
	m := e.disk.Manifest
	if len(m.Deltas) == 0 && len(m.Tombstones) == 0 {
		return nil
	}
	var extras []ExtraShard
	deltaSeqs, deltaRes := 0, int64(0)
	for _, d := range m.Deltas {
		idx, err := m.OpenFile(dir, d.File, opts.PoolBytesPerShard, opts.WarmupPages)
		if err != nil {
			return fmt.Errorf("shard: opening delta layer %s: %w", d.File, err)
		}
		e.closers = append(e.closers, idx)
		extras = append(extras, ExtraShard{
			Index:   idx,
			Globals: append([]int(nil), d.GlobalIndex...),
		})
		deltaSeqs += len(d.GlobalIndex)
		deltaRes += d.Residues
	}
	cat := e.cat
	if len(extras) > 0 {
		cat = NewLayeredCatalog(e.cat, m.NumSequences, m.TotalResidues, extras)
	}
	numSeqs := m.NumSequences + deltaSeqs
	totalRes := m.TotalResidues + deltaRes
	liveRes := totalRes
	ext := &ExtraSet{
		Shards:   extras,
		LiveSeqs: numSeqs - len(m.Tombstones),
		NumSeqs:  numSeqs,
	}
	if len(m.Tombstones) > 0 {
		tombs := make(map[int]bool, len(m.Tombstones))
		for _, t := range m.Tombstones {
			tombs[t] = true
			liveRes -= int64(cat.SequenceLength(t))
		}
		ext.Drop = func(i int) bool { return tombs[i] }
	}
	ext.TotalResidues = liveRes
	e.cat = cat
	e.numSeqs = numSeqs
	e.total = totalRes
	e.mutable = ext
	return nil
}

// Disk returns the engine's on-disk shard set (buffer-pool statistics,
// manifest), or nil for in-memory engines.
func (e *Engine) Disk() *diskst.Sharded { return e.disk }
