package shard

import (
	"io"

	"repro/internal/core"
	"repro/internal/diskst"
)

// DiskOptions configures OpenDiskEngine.
type DiskOptions struct {
	// Workers bounds concurrent shard searches per query (default: one per
	// shard), as in Options.
	Workers int
	// PoolBytesPerShard is each shard's buffer-pool capacity in bytes
	// (default diskst.DefaultPoolBytesPerShard).
	PoolBytesPerShard int64
	// AllowDegraded admits a sequence-partitioned directory whose shard
	// file(s) fail to open: the failed shards are quarantined and every
	// search reports Degraded (see diskst.OpenOptions.AllowDegraded).
	AllowDegraded bool
	// WarmupPages controls open-time buffer-pool warm-up per shard
	// (0 = diskst.DefaultWarmupPages, negative = disabled).
	WarmupPages int
}

// OpenDiskEngine opens a sharded on-disk index directory (written by
// diskst.BuildSharded / oasis-build -shards) and assembles a sharded engine
// over it: every shard searches its own diskst.Index through its own buffer
// pool, so a query's shard fan-out also fans out page I/O, and the engine
// never needs the source database in memory.  The returned engine owns the
// index files; call Close when done serving.
func OpenDiskEngine(dir string, opts DiskOptions) (*Engine, error) {
	disk, err := diskst.OpenSharded(dir, diskst.OpenOptions{
		PoolBytesPerShard: opts.PoolBytesPerShard,
		AllowDegraded:     opts.AllowDegraded,
		WarmupPages:       opts.WarmupPages,
	})
	if err != nil {
		return nil, err
	}
	set := IndexSet{Closers: []io.Closer{disk}, Standing: disk.Quarantined}
	switch disk.Manifest.Partition {
	case diskst.PartitionPrefix:
		set.Partition = PartitionByPrefix
		set.Views = make([]core.Index, len(disk.Indexes))
		for i, idx := range disk.Indexes {
			set.Views[i] = idx
		}
		// Frontier is nil for single-shard directories (no shared expansion
		// ever runs); assigning a typed nil into the interface would defeat
		// NewEngineFromSet's Views[0] fallback.
		if disk.Frontier != nil {
			set.Frontier = disk.Frontier
		}
		set.Prefixes = disk.Prefixes
	default:
		set.Partition = PartitionBySequence
		// Quarantined shards hold nil entries; the engine runs over the
		// survivors, whose Globals maps keep the original global numbering
		// (the union catalog tolerates the holes).
		for i, idx := range disk.Indexes {
			if idx == nil {
				continue
			}
			set.Indexes = append(set.Indexes, idx)
			set.Globals = append(set.Globals, disk.Manifest.GlobalIndex[i])
		}
	}
	e, err := NewEngineFromSet(set, Options{Workers: opts.Workers})
	if err != nil {
		disk.Close()
		return nil, err
	}
	e.disk = disk
	return e, nil
}

// Disk returns the engine's on-disk shard set (buffer-pool statistics,
// manifest), or nil for in-memory engines.
func (e *Engine) Disk() *diskst.Sharded { return e.disk }
