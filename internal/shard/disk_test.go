package shard

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/diskst"
	"repro/internal/score"
	"repro/internal/seq"
)

// TestDiskEngineEquivalenceProperty is the randomized disk-vs-memory
// equivalence property: across random databases, queries, shard counts and
// both partition modes, a sharded engine serving per-shard DISK indexes
// through per-shard buffer pools must report the same sequences with the
// same scores, in globally non-increasing score order and with the same
// score at every rank, as the single in-memory index search.
func TestDiskEngineEquivalenceProperty(t *testing.T) {
	cases := map[string]struct {
		a      *seq.Alphabet
		scheme score.Scheme
	}{
		"dna":     {seq.DNA, score.MustScheme(score.UnitDNA(), -1)},
		"protein": {seq.Protein, score.MustScheme(score.ByName("PAM30"), -10)},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(4021))
			letters := cfg.a.Letters()
			for trial := 0; trial < 12; trial++ {
				db := randomShardDB(t, rng, cfg.a, 2+rng.Intn(24), 80)
				qb := make([]byte, 3+rng.Intn(14))
				for i := range qb {
					qb[i] = letters[rng.Intn(len(letters))]
				}
				query := cfg.a.MustEncode(string(qb))
				opts := core.Options{Scheme: cfg.scheme, MinScore: 1 + rng.Intn(10)}

				single, err := core.BuildMemoryIndex(db)
				if err != nil {
					t.Fatal(err)
				}
				baseline, err := core.SearchAll(single, query, opts)
				if err != nil {
					t.Fatal(err)
				}

				for _, prefix := range []bool{false, true} {
					shards := 1 + rng.Intn(5)
					dir := filepath.Join(t.TempDir(), "idx")
					manifest, _, err := diskst.BuildSharded(dir, db, diskst.ShardedBuildOptions{
						WriteOptions:      diskst.WriteOptions{BlockSize: 2048},
						Shards:            shards,
						PartitionByPrefix: prefix,
					})
					if err != nil {
						t.Fatalf("trial %d prefix=%v: BuildSharded: %v", trial, prefix, err)
					}
					eng, err := OpenDiskEngine(dir, DiskOptions{
						// Tiny pools force real page traffic and eviction.
						PoolBytesPerShard: 16 * 2048,
					})
					if err != nil {
						t.Fatalf("trial %d prefix=%v: OpenDiskEngine: %v", trial, prefix, err)
					}
					if eng.NumShards() != manifest.Shards {
						t.Fatalf("engine has %d shards, manifest %d", eng.NumShards(), manifest.Shards)
					}
					got, err := eng.SearchAll(query, opts)
					if err != nil {
						t.Fatalf("trial %d prefix=%v: search: %v", trial, prefix, err)
					}
					checkOrderAndRanks(t, got, "disk")
					if len(got) != len(baseline) {
						t.Fatalf("trial %d prefix=%v shards=%d: disk reported %d hits, memory single %d",
							trial, prefix, shards, len(got), len(baseline))
					}
					want := multiset(baseline)
					for i, h := range got {
						if want[keyOf(h)] == 0 {
							t.Fatalf("trial %d prefix=%v: hit %+v not in single-index results", trial, prefix, h)
						}
						want[keyOf(h)]--
						if h.Score != baseline[i].Score {
							t.Fatalf("trial %d prefix=%v: rank %d score %d, single-index %d",
								trial, prefix, i+1, h.Score, baseline[i].Score)
						}
					}
					// The global catalog must describe the source database so
					// alignment recovery and metadata lookups agree with it.
					cat := eng.Catalog()
					if cat.NumSequences() != db.NumSequences() || cat.TotalResidues() != db.TotalResidues() {
						t.Fatalf("catalog reports %d seqs / %d residues, db has %d / %d",
							cat.NumSequences(), cat.TotalResidues(), db.NumSequences(), db.TotalResidues())
					}
					for i := 0; i < db.NumSequences(); i++ {
						if cat.SequenceID(i) != db.Sequence(i).ID {
							t.Fatalf("catalog sequence %d is %q, db has %q", i, cat.SequenceID(i), db.Sequence(i).ID)
						}
						res, err := cat.Residues(i)
						if err != nil {
							t.Fatal(err)
						}
						if string(res) != string(db.Sequence(i).Residues) {
							t.Fatalf("catalog residues for sequence %d differ from the database", i)
						}
					}
					if len(got) > 0 {
						stats := eng.Disk().PoolStats()
						var requests int64
						for _, ps := range stats {
							requests += ps.Requests
						}
						if requests == 0 {
							t.Fatalf("trial %d prefix=%v: search reported hits without touching any buffer pool", trial, prefix)
						}
					}
					if err := eng.Close(); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
}

// TestDiskEngineUnionCatalogLocate pins the union catalog's concatenated
// coordinate view: positions locate to the same (sequence, offset) pairs as
// the source database.
func TestDiskEngineUnionCatalogLocate(t *testing.T) {
	db, err := seq.DatabaseFromStrings(seq.DNA, "ACGTAC", "GG", "TTTACG", "A")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, _, err := diskst.BuildSharded(dir, db, diskst.ShardedBuildOptions{Shards: 3}); err != nil {
		t.Fatal(err)
	}
	eng, err := OpenDiskEngine(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cat := eng.Catalog()
	for pos := int64(0); pos < db.ConcatLen(); pos++ {
		wantSeq, wantOff, err := db.Locate(pos)
		if err != nil {
			t.Fatal(err)
		}
		gotSeq, gotOff, err := cat.Locate(pos)
		if err != nil {
			t.Fatalf("Locate(%d): %v", pos, err)
		}
		if gotSeq != wantSeq || gotOff != wantOff {
			t.Fatalf("Locate(%d) = (%d,%d), database has (%d,%d)", pos, gotSeq, gotOff, wantSeq, wantOff)
		}
	}
	if _, _, err := cat.Locate(db.ConcatLen()); err == nil {
		t.Fatal("Locate past the end did not fail")
	}
}
