package shard

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/diskst"
	"repro/internal/score"
	"repro/internal/seq"
)

// FuzzCorruptIndexDir bit-flips arbitrary bytes of a built sharded index and
// asserts the no-silent-corruption contract end to end: opening and searching
// the damaged directory must either succeed with exactly the pristine
// results (the flip landed in padding), complete degraded with Degraded set
// and a hit stream drawn from the pristine one (the flip killed a shard and
// the survivors answered), or fail with an error (typically a checksum
// mismatch) — it must never panic and never return silently wrong hits.
//
// The shard .oasis files are the fuzz surface because they are what the
// CRC32C layer protects; manifest.json is structurally validated JSON, not
// checksummed data.
func FuzzCorruptIndexDir(f *testing.F) {
	rng := rand.New(rand.NewSource(41))
	letters := seq.DNA.Letters()
	strs := make([]string, 10)
	for i := range strs {
		b := make([]byte, 20+rng.Intn(40))
		for j := range b {
			b[j] = letters[rng.Intn(len(letters))]
		}
		strs[i] = string(b)
	}
	db, err := seq.DatabaseFromStrings(seq.DNA, strs...)
	if err != nil {
		f.Fatal(err)
	}
	template := filepath.Join(f.TempDir(), "idx")
	manifest, _, err2 := diskst.BuildSharded(template, db, diskst.ShardedBuildOptions{
		WriteOptions: diskst.WriteOptions{BlockSize: 512},
		Shards:       2,
	})
	if err2 != nil {
		f.Fatal(err2)
	}
	pristine := map[string][]byte{}
	files := append([]string{}, manifest.ShardFiles...)
	for _, name := range files {
		data, err := os.ReadFile(filepath.Join(template, name))
		if err != nil {
			f.Fatal(err)
		}
		pristine[name] = data
	}
	manifestBytes, err := os.ReadFile(filepath.Join(template, "manifest.json"))
	if err != nil {
		f.Fatal(err)
	}
	query := seq.DNA.MustEncode("ACGTACGT")
	opts := core.Options{Scheme: score.MustScheme(score.UnitDNA(), -1), MinScore: 3}

	single, err := core.BuildMemoryIndex(db)
	if err != nil {
		f.Fatal(err)
	}
	baseline, err := core.SearchAll(single, query, opts)
	if err != nil {
		f.Fatal(err)
	}
	want := multiset(baseline)

	f.Add(uint8(0), uint32(200), uint8(0x01))
	f.Add(uint8(1), uint32(90), uint8(0x80))
	f.Add(uint8(0), uint32(0), uint8(0xFF))   // header magic
	f.Add(uint8(0), uint32(511), uint8(0x10)) // block-padding tail
	f.Fuzz(func(t *testing.T, fileByte uint8, offset uint32, xor uint8) {
		if xor == 0 {
			t.Skip() // no-op flip
		}
		name := files[int(fileByte)%len(files)]
		dir := filepath.Join(t.TempDir(), "idx")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for n, data := range pristine {
			mutated := append([]byte(nil), data...)
			if n == name {
				mutated[int(offset)%len(mutated)] ^= xor
			}
			if err := os.WriteFile(filepath.Join(dir, n), mutated, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(dir, "manifest.json"), manifestBytes, 0o644); err != nil {
			t.Fatal(err)
		}

		// The deep scrub must never panic on damaged input.
		if _, err := diskst.VerifyIndexDir(dir); err != nil {
			return // unreadable enough that even the scrub refuses: fine
		}

		eng, err := OpenDiskEngine(dir, DiskOptions{
			PoolBytesPerShard: 8 * 512,
			WarmupPages:       -1,
			AllowDegraded:     true,
		})
		if err != nil {
			return // detected at open: fine
		}
		defer eng.Close()
		var st core.Stats
		qOpts := opts
		qOpts.Stats = &st
		hits, err := eng.SearchAll(query, qOpts)
		if err != nil {
			return // detected at search: fine
		}
		checkOrderAndRanks(t, hits, "corrupted-dir")
		for _, h := range hits {
			k := keyOf(h)
			if want[k] == 0 {
				t.Fatalf("silent corruption: hit %+v not in the pristine result set", h)
			}
		}
		if !st.Degraded && len(hits) != len(baseline) {
			t.Fatalf("undegraded stream lost hits: got %d, want %d", len(hits), len(baseline))
		}
	})
}
