package shard

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/seq"
)

// engineProvider adapts a local engine's SearchBounded to the Provider
// interface, offsetting slice-local indexes into the global space — the
// in-process mirror of what internal/remote does over the wire, which lets
// the provider plumbing be tested without HTTP in the loop.
type engineProvider struct {
	eng    *Engine
	offset int
	fail   error // when set, Stream fails immediately
}

func (p *engineProvider) Stream(query []byte, opts core.Options, hit func(core.Hit) bool, bound func(int) bool) error {
	if p.fail != nil {
		return p.fail
	}
	return p.eng.SearchBounded(query, opts, func(h core.Hit) bool {
		h.SeqIndex += p.offset
		return hit(h)
	}, bound)
}

// catalogStub carries just the global totals the provider engine needs.
type catalogStub struct {
	alphabet  *seq.Alphabet
	sequences int
	residues  int64
}

func (c *catalogStub) Alphabet() *seq.Alphabet { return c.alphabet }
func (c *catalogStub) NumSequences() int       { return c.sequences }
func (c *catalogStub) SequenceID(int) string   { return "" }
func (c *catalogStub) SequenceLength(int) int  { return 0 }
func (c *catalogStub) TotalResidues() int64    { return c.residues }
func (c *catalogStub) Locate(int64) (int, int64, error) {
	return 0, 0, errors.New("stub catalog holds no residues")
}
func (c *catalogStub) Residues(int) ([]byte, error) {
	return nil, errors.New("stub catalog holds no residues")
}

// TestProviderEngineEquivalence: an engine over in-process providers (each a
// slice of the corpus) must reproduce the multi-shard baseline stream —
// same sequences, scores, ranks — and stay deterministic across runs.
func TestProviderEngineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	a := seq.DNA
	scheme := score.MustScheme(score.UnitDNA(), -1)
	for trial := 0; trial < 10; trial++ {
		db := randomShardDB(t, rng, a, 8+rng.Intn(20), 80)
		n := db.NumSequences()
		baseline, err := NewEngine(db, Options{Shards: 2 + rng.Intn(3)})
		if err != nil {
			t.Fatal(err)
		}

		// Slice the corpus contiguously into 2-3 provider-backed engines.
		nSlices := 2 + rng.Intn(2)
		if nSlices > n {
			nSlices = n
		}
		var providers []Provider
		var residues int64
		offset := 0
		per := n / nSlices
		for s := 0; s < nSlices; s++ {
			lo, hi := s*per, (s+1)*per
			if s == nSlices-1 {
				hi = n
			}
			seqs := make([]seq.Sequence, 0, hi-lo)
			for i := lo; i < hi; i++ {
				seqs = append(seqs, db.Sequence(i))
			}
			sliceDB, err := seq.NewDatabase(a, seqs)
			if err != nil {
				t.Fatal(err)
			}
			sliceEng, err := NewEngine(sliceDB, Options{Shards: 1 + rng.Intn(2)})
			if err != nil {
				t.Fatal(err)
			}
			defer sliceEng.Close()
			providers = append(providers, &engineProvider{eng: sliceEng, offset: offset})
			offset += hi - lo
			residues += sliceDB.TotalResidues()
		}
		pe, err := NewEngineFromProviders(ProviderSet{
			Providers: providers,
			Catalog:   &catalogStub{alphabet: a, sequences: n, residues: residues},
		}, Options{})
		if err != nil {
			t.Fatal(err)
		}

		query := a.MustEncode("ACGTACGTAC"[:4+rng.Intn(7)])
		opts := core.Options{Scheme: scheme, MinScore: 2}
		want, err := baseline.SearchAll(query, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pe.SearchAll(query, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: provider engine reported %d hits, baseline %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].SeqIndex != want[i].SeqIndex || got[i].Score != want[i].Score || got[i].Rank != want[i].Rank {
				t.Fatalf("trial %d hit %d: got %+v, want %+v", trial, i, got[i], want[i])
			}
		}
		again, err := pe.SearchAll(query, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, got) {
			t.Fatalf("trial %d: provider engine stream not reproducible", trial)
		}
		baseline.Close()
		pe.Close()
	}
}

// TestProviderFailureQuarantines: a failing provider degrades the stream
// (non-strict) or fails it (strict), through the standard PR 6 path.
func TestProviderFailureQuarantines(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := seq.DNA
	db := randomShardDB(t, rng, a, 12, 60)
	eng, err := NewEngine(db, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	bad := errors.New("replica set unreachable")
	pe, err := NewEngineFromProviders(ProviderSet{
		Providers: []Provider{
			&engineProvider{eng: eng},
			&engineProvider{fail: bad},
		},
		Catalog: &catalogStub{alphabet: a, sequences: db.NumSequences() * 2, residues: db.TotalResidues() * 2},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pe.Close()

	query := a.MustEncode("ACGTAC")
	opts := core.Options{Scheme: score.MustScheme(score.UnitDNA(), -1), MinScore: 2}
	var st core.Stats
	opts.Stats = &st
	want, err := eng.SearchAll(query, core.Options{Scheme: opts.Scheme, MinScore: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := pe.SearchAll(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Degraded || len(st.ShardErrors) != 1 {
		t.Fatalf("expected one quarantined provider, got %+v", st)
	}
	if len(got) != len(want) {
		t.Fatalf("degraded stream has %d hits, survivor baseline %d", len(got), len(want))
	}

	strict := core.Options{Scheme: opts.Scheme, MinScore: 2, StrictShards: true}
	if _, err := pe.SearchAll(query, strict); err == nil {
		t.Fatal("strict search over a failing provider must fail")
	}

	// SearchExtra has no meaning for provider-backed engines.
	ext := &ExtraSet{Drop: func(int) bool { return false }}
	if err := pe.SearchExtra(query, opts, ext, func(core.Hit) bool { return true }); err == nil {
		t.Fatal("SearchExtra on a provider engine must refuse")
	}
}
