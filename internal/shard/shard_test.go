package shard

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/seq"
)

func randomShardDB(t *testing.T, rng *rand.Rand, a *seq.Alphabet, nSeqs, maxLen int) *seq.Database {
	t.Helper()
	letters := a.Letters()
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[rng.Intn(len(letters))]
		}
		return string(b)
	}
	motif := randStr(6 + rng.Intn(10))
	strs := make([]string, nSeqs)
	for i := range strs {
		s := randStr(1 + rng.Intn(maxLen))
		if rng.Intn(2) == 0 {
			pos := rng.Intn(len(s) + 1)
			s = s[:pos] + motif + s[pos:]
		}
		strs[i] = s
	}
	db, err := seq.DatabaseFromStrings(a, strs...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

type hitKey struct {
	seqIndex int
	seqID    string
	score    int
	eValue   float64
}

func keyOf(h core.Hit) hitKey {
	return hitKey{seqIndex: h.SeqIndex, seqID: h.SeqID, score: h.Score, eValue: h.EValue}
}

func multiset(hits []core.Hit) map[hitKey]int {
	m := map[hitKey]int{}
	for _, h := range hits {
		m[keyOf(h)]++
	}
	return m
}

func checkOrderAndRanks(t *testing.T, hits []core.Hit, label string) {
	t.Helper()
	for i, h := range hits {
		if h.Rank != i+1 {
			t.Fatalf("%s: hit %d has rank %d, want %d", label, i, h.Rank, i+1)
		}
		if i > 0 && h.Score > hits[i-1].Score {
			t.Fatalf("%s: score order violated at %d: %d after %d", label, i, h.Score, hits[i-1].Score)
		}
	}
}

// TestShardedEquivalenceProperty is the randomized shard-vs-single
// equivalence property: across random databases, queries, shard/worker
// counts, MinScore thresholds, MaxResults limits and early cancellation, the
// sharded engine must report the same sequences with the same scores in
// globally non-increasing score order as the single-index search.
func TestShardedEquivalenceProperty(t *testing.T) {
	cases := map[string]struct {
		a      *seq.Alphabet
		scheme score.Scheme
	}{
		"dna":     {seq.DNA, score.MustScheme(score.UnitDNA(), -1)},
		"protein": {seq.Protein, score.MustScheme(score.ByName("PAM30"), -10)},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1309))
			letters := cfg.a.Letters()
			for trial := 0; trial < 40; trial++ {
				db := randomShardDB(t, rng, cfg.a, 2+rng.Intn(30), 90)
				qb := make([]byte, 3+rng.Intn(16))
				for i := range qb {
					qb[i] = letters[rng.Intn(len(letters))]
				}
				query := cfg.a.MustEncode(string(qb))
				minScore := 1 + rng.Intn(12)
				var ka *score.KarlinAltschul
				if params, err := score.Params(cfg.scheme.Matrix, nil); err == nil && rng.Intn(2) == 0 {
					ka = &params
				}
				opts := core.Options{Scheme: cfg.scheme, MinScore: minScore, KA: ka}

				single, err := core.BuildMemoryIndex(db)
				if err != nil {
					t.Fatal(err)
				}
				baseline, err := core.SearchAll(single, query, opts)
				if err != nil {
					t.Fatal(err)
				}

				engine, err := NewEngine(db, Options{
					Shards:  1 + rng.Intn(8),
					Workers: 1 + rng.Intn(4),
				})
				if err != nil {
					t.Fatal(err)
				}

				// Full run: identical multiset, order, ranks, merged stats.
				var st core.Stats
				fullOpts := opts
				fullOpts.Stats = &st
				sharded, err := engine.SearchAll(query, fullOpts)
				if err != nil {
					t.Fatal(err)
				}
				checkOrderAndRanks(t, sharded, "sharded full")
				wantSet := multiset(baseline)
				gotSet := multiset(sharded)
				if len(sharded) != len(baseline) {
					t.Fatalf("trial %d (%d shards): sharded reported %d hits, single %d",
						trial, engine.NumShards(), len(sharded), len(baseline))
				}
				for k, n := range wantSet {
					if gotSet[k] != n {
						t.Fatalf("trial %d: hit %+v count mismatch: sharded %d, single %d", trial, k, gotSet[k], n)
					}
				}
				if st.SequencesReported != int64(len(sharded)) {
					t.Fatalf("trial %d: merged stats report %d sequences, emitted %d",
						trial, st.SequencesReported, len(sharded))
				}
				if len(sharded) > 0 && st.NodesExpanded == 0 {
					t.Fatalf("trial %d: merged stats lost shard work counters", trial)
				}

				// Top-k run: the score sequence must equal the baseline's
				// first k scores (ties may resolve to a different sequence,
				// but every reported hit must exist in the full result set).
				if len(baseline) > 1 {
					k := 1 + rng.Intn(len(baseline))
					topOpts := opts
					topOpts.MaxResults = k
					topK, err := engine.SearchAll(query, topOpts)
					if err != nil {
						t.Fatal(err)
					}
					checkTruncated(t, trial, "top-k", topK, baseline, k)
				}

				// Early cancel via the report callback.
				if len(baseline) > 0 {
					stop := 1 + rng.Intn(len(baseline))
					var got []core.Hit
					err := engine.Search(query, opts, func(h core.Hit) bool {
						got = append(got, h)
						return len(got) < stop
					})
					if err != nil {
						t.Fatal(err)
					}
					checkTruncated(t, trial, "early-cancel", got, baseline, stop)
				}
			}
		})
	}
}

// checkTruncated verifies a truncated sharded stream against the full
// single-index baseline: same length, same score sequence, every hit present
// in the full result set.
func checkTruncated(t *testing.T, trial int, label string, got, baseline []core.Hit, k int) {
	t.Helper()
	if k > len(baseline) {
		k = len(baseline)
	}
	if len(got) != k {
		t.Fatalf("trial %d %s: got %d hits, want %d", trial, label, len(got), k)
	}
	checkOrderAndRanks(t, got, label)
	valid := map[hitKey]int{}
	for _, h := range baseline {
		valid[keyOf(h)]++
	}
	for i, h := range got {
		if h.Score != baseline[i].Score {
			t.Fatalf("trial %d %s: score %d at position %d, baseline has %d", trial, label, h.Score, i, baseline[i].Score)
		}
		if valid[keyOf(h)] == 0 {
			t.Fatalf("trial %d %s: hit %+v not in the full result set", trial, label, keyOf(h))
		}
		valid[keyOf(h)]--
	}
}

// TestPrefixShardedEquivalenceProperty is the randomized prefix-vs-single
// equivalence property, mirroring TestShardedEquivalenceProperty: across
// random databases, queries, shard/worker counts, MinScore thresholds,
// MaxResults limits and early cancellation, the prefix-partitioned engine
// must report the same sequences with the same scores in globally
// non-increasing score order as the single-index search.  Alignment
// endpoints may differ only for equal-score ties (a sequence may achieve its
// best score in subtrees owned by different shards), so hits are compared as
// (sequence, score) pairs.
func TestPrefixShardedEquivalenceProperty(t *testing.T) {
	cases := map[string]struct {
		a      *seq.Alphabet
		scheme score.Scheme
	}{
		"dna":     {seq.DNA, score.MustScheme(score.UnitDNA(), -1)},
		"protein": {seq.Protein, score.MustScheme(score.ByName("PAM30"), -10)},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(2003))
			letters := cfg.a.Letters()
			for trial := 0; trial < 40; trial++ {
				db := randomShardDB(t, rng, cfg.a, 2+rng.Intn(30), 90)
				qb := make([]byte, 3+rng.Intn(16))
				for i := range qb {
					qb[i] = letters[rng.Intn(len(letters))]
				}
				query := cfg.a.MustEncode(string(qb))
				minScore := 1 + rng.Intn(12)
				var ka *score.KarlinAltschul
				if params, err := score.Params(cfg.scheme.Matrix, nil); err == nil && rng.Intn(2) == 0 {
					ka = &params
				}
				opts := core.Options{Scheme: cfg.scheme, MinScore: minScore, KA: ka}

				single, err := core.BuildMemoryIndex(db)
				if err != nil {
					t.Fatal(err)
				}
				baseline, err := core.SearchAll(single, query, opts)
				if err != nil {
					t.Fatal(err)
				}

				engine, err := NewEngine(db, Options{
					Shards:    1 + rng.Intn(8),
					Workers:   1 + rng.Intn(4),
					Partition: PartitionByPrefix,
				})
				if err != nil {
					t.Fatal(err)
				}

				var st core.Stats
				fullOpts := opts
				fullOpts.Stats = &st
				sharded, err := engine.SearchAll(query, fullOpts)
				if err != nil {
					t.Fatal(err)
				}
				checkOrderAndRanks(t, sharded, "prefix full")
				if len(sharded) != len(baseline) {
					t.Fatalf("trial %d (%d shards): prefix-sharded reported %d hits, single %d",
						trial, engine.NumShards(), len(sharded), len(baseline))
				}
				wantPairs := map[[2]int]int{}
				for _, h := range baseline {
					wantPairs[[2]int{h.SeqIndex, h.Score}]++
				}
				for i, h := range sharded {
					if h.Score != baseline[i].Score {
						t.Fatalf("trial %d: score %d at position %d, baseline has %d",
							trial, h.Score, i, baseline[i].Score)
					}
					k := [2]int{h.SeqIndex, h.Score}
					if wantPairs[k] == 0 {
						t.Fatalf("trial %d: hit %+v not in the single-index result set", trial, h)
					}
					wantPairs[k]--
					if h.EValue != baseline[i].EValue {
						t.Fatalf("trial %d: E-value %v at position %d, baseline has %v",
							trial, h.EValue, i, baseline[i].EValue)
					}
				}
				if st.SequencesReported < int64(len(sharded)) {
					t.Fatalf("trial %d: merged stats report %d sequences, emitted %d",
						trial, st.SequencesReported, len(sharded))
				}

				// Top-k: score sequence equals the baseline's first k scores.
				if len(baseline) > 1 {
					k := 1 + rng.Intn(len(baseline))
					topOpts := opts
					topOpts.MaxResults = k
					topK, err := engine.SearchAll(query, topOpts)
					if err != nil {
						t.Fatal(err)
					}
					checkTruncatedPairs(t, trial, "prefix top-k", topK, baseline, k)
				}

				// Early cancel via the report callback.
				if len(baseline) > 0 {
					stop := 1 + rng.Intn(len(baseline))
					var got []core.Hit
					err := engine.Search(query, opts, func(h core.Hit) bool {
						got = append(got, h)
						return len(got) < stop
					})
					if err != nil {
						t.Fatal(err)
					}
					checkTruncatedPairs(t, trial, "prefix early-cancel", got, baseline, stop)
				}
			}
		})
	}
}

// checkTruncatedPairs verifies a truncated prefix-sharded stream against the
// full single-index baseline: same length, same score sequence, every
// (sequence, score) pair present in the full result set.
func checkTruncatedPairs(t *testing.T, trial int, label string, got, baseline []core.Hit, k int) {
	t.Helper()
	if k > len(baseline) {
		k = len(baseline)
	}
	if len(got) != k {
		t.Fatalf("trial %d %s: got %d hits, want %d", trial, label, len(got), k)
	}
	checkOrderAndRanks(t, got, label)
	valid := map[[2]int]int{}
	for _, h := range baseline {
		valid[[2]int{h.SeqIndex, h.Score}]++
	}
	for i, h := range got {
		if h.Score != baseline[i].Score {
			t.Fatalf("trial %d %s: score %d at position %d, baseline has %d",
				trial, label, h.Score, i, baseline[i].Score)
		}
		k := [2]int{h.SeqIndex, h.Score}
		if valid[k] == 0 {
			t.Fatalf("trial %d %s: hit %+v not in the full result set", trial, label, h)
		}
		valid[k]--
	}
}

// TestPrefixShardingEliminatesNearRootDuplication is the tentpole work
// claim: on a full (uncancelled) workload, the prefix-partitioned engine's
// total ColumnsExpanded and CellsComputed must equal the single-index
// search's exactly, at every shard count — the shared frontier computes
// near-root columns once, and disjoint subtrees never repeat work.  The
// sequence-partitioned engine, by contrast, must show strictly more columns
// at 4 shards (that duplication is what prefix partitioning removes).
func TestPrefixShardingEliminatesNearRootDuplication(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	motif := "DKDGDGCITTKELGTVMRSL"
	letters := seq.Protein.Letters()
	strs := make([]string, 60)
	for i := range strs {
		b := make([]byte, 40+rng.Intn(110))
		for j := range b {
			b[j] = letters[rng.Intn(len(letters))]
		}
		s := string(b)
		if i%3 == 0 { // plant the motif (sometimes truncated) in a third
			frag := motif[:8+rng.Intn(len(motif)-8)]
			pos := rng.Intn(len(s))
			s = s[:pos] + frag + s[pos:]
		}
		strs[i] = s
	}
	db, err := seq.DatabaseFromStrings(seq.Protein, strs...)
	if err != nil {
		t.Fatal(err)
	}
	query := seq.Protein.MustEncode(motif)
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	opts := core.Options{Scheme: scheme, MinScore: 30}

	single, err := core.BuildMemoryIndex(db)
	if err != nil {
		t.Fatal(err)
	}
	var base core.Stats
	baseOpts := opts
	baseOpts.Stats = &base
	baseHits, err := core.SearchAll(single, query, baseOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseHits) == 0 || len(baseHits) == db.NumSequences() {
		t.Fatalf("degenerate workload: %d/%d sequences hit", len(baseHits), db.NumSequences())
	}

	for _, shards := range []int{2, 4, 8} {
		engine, err := NewEngine(db, Options{Shards: shards, Partition: PartitionByPrefix})
		if err != nil {
			t.Fatal(err)
		}
		var st core.Stats
		prefOpts := opts
		prefOpts.Stats = &st
		hits, err := engine.SearchAll(query, prefOpts)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) != len(baseHits) {
			t.Fatalf("%d shards: %d hits, single-index %d", shards, len(hits), len(baseHits))
		}
		if st.ColumnsExpanded != base.ColumnsExpanded {
			t.Errorf("%d shards: ColumnsExpanded %d, single-index %d (near-root work duplicated or lost)",
				shards, st.ColumnsExpanded, base.ColumnsExpanded)
		}
		if st.CellsComputed != base.CellsComputed {
			t.Errorf("%d shards: CellsComputed %d, single-index %d",
				shards, st.CellsComputed, base.CellsComputed)
		}
	}

	seqEngine, err := NewEngine(db, Options{Shards: 4, Partition: PartitionBySequence})
	if err != nil {
		t.Fatal(err)
	}
	var seqStats core.Stats
	seqOpts := opts
	seqOpts.Stats = &seqStats
	if _, err := seqEngine.SearchAll(query, seqOpts); err != nil {
		t.Fatal(err)
	}
	if seqStats.ColumnsExpanded <= base.ColumnsExpanded {
		t.Fatalf("sequence sharding at 4 shards expanded %d columns, expected more than the single-index %d",
			seqStats.ColumnsExpanded, base.ColumnsExpanded)
	}
	t.Logf("columns: single=%d prefix(2/4/8)=%d sequence(4)=%d",
		base.ColumnsExpanded, base.ColumnsExpanded, seqStats.ColumnsExpanded)
}

// TestShardedSingleShardMatchesBaselineExactly pins the 1-shard fast path to
// the single-index search bit for bit (including endpoints and ranks).
func TestShardedSingleShardMatchesBaselineExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := randomShardDB(t, rng, seq.DNA, 12, 80)
	query := seq.DNA.MustEncode("ACGTACGT")
	opts := core.Options{Scheme: score.MustScheme(score.UnitDNA(), -1), MinScore: 4}

	single, err := core.BuildMemoryIndex(db)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := core.SearchAll(single, query, opts)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(db, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := engine.SearchAll(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(baseline) {
		t.Fatalf("got %d hits, want %d", len(got), len(baseline))
	}
	for i := range got {
		if got[i] != baseline[i] {
			t.Fatalf("hit %d differs: got %+v, want %+v", i, got[i], baseline[i])
		}
	}
}

// TestShardedErrorPropagation checks option validation surfaces through the
// sharded engine.
func TestShardedErrorPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db := randomShardDB(t, rng, seq.DNA, 6, 40)
	engine, err := NewEngine(db, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	// MinScore 0 is invalid.
	if _, err := engine.SearchAll(seq.DNA.MustEncode("ACGT"), core.Options{
		Scheme: score.MustScheme(score.UnitDNA(), -1), MinScore: 0,
	}); err == nil {
		t.Fatal("expected a MinScore validation error")
	}
	// Empty queries are invalid.
	if _, err := engine.SearchAll(nil, core.Options{
		Scheme: score.MustScheme(score.UnitDNA(), -1), MinScore: 1,
	}); err == nil {
		t.Fatal("expected an empty-query error")
	}
}
