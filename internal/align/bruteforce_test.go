package align

import (
	"math/rand"
	"testing"

	"repro/internal/score"
	"repro/internal/seq"
)

// bruteForceLocal computes the optimal local alignment score by exhaustive
// recursion over all alignments of all substring pairs.  Exponential — only
// usable for very short sequences — but independent of the DP formulation,
// so it validates Smith-Waterman itself rather than just its internal
// consistency.
func bruteForceLocal(q, t []byte, sch score.Scheme) int {
	best := 0
	var rec func(i, j, acc int)
	rec = func(i, j, acc int) {
		if acc > best {
			best = acc
		}
		if i >= len(q) && j >= len(t) {
			return
		}
		if i < len(q) && j < len(t) {
			rec(i+1, j+1, acc+sch.Matrix.Score(q[i], t[j]))
		}
		if i < len(q) {
			rec(i+1, j, acc+sch.Gap)
		}
		if j < len(t) {
			rec(i, j+1, acc+sch.Gap)
		}
	}
	// Try every alignment start pair.
	for i := 0; i <= len(q); i++ {
		for j := 0; j <= len(t); j++ {
			rec(i, j, 0)
		}
	}
	return best
}

func TestSmithWatermanAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	schemes := []score.Scheme{
		score.MustScheme(score.UnitDNA(), -1),
		score.MustScheme(score.UnitDNA(), -2),
		score.MustScheme(score.BLASTDNA(), -5),
	}
	for trial := 0; trial < 40; trial++ {
		q := make([]byte, 1+rng.Intn(5))
		tg := make([]byte, 1+rng.Intn(6))
		for i := range q {
			q[i] = byte(rng.Intn(4))
		}
		for i := range tg {
			tg[i] = byte(rng.Intn(4))
		}
		for _, sch := range schemes {
			want := bruteForceLocal(q, tg, sch)
			got := Score(q, tg, sch, nil)
			if got != want {
				t.Fatalf("trial %d (%s gap %d): S-W %d, brute force %d (q=%v t=%v)",
					trial, sch.Matrix.Name(), sch.Gap, got, want, q, tg)
			}
		}
	}
}

func TestSmithWatermanProteinAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	sch := score.MustScheme(score.BLOSUM62(), -6)
	for trial := 0; trial < 15; trial++ {
		q := make([]byte, 1+rng.Intn(4))
		tg := make([]byte, 1+rng.Intn(5))
		for i := range q {
			q[i] = byte(rng.Intn(20))
		}
		for i := range tg {
			tg[i] = byte(rng.Intn(20))
		}
		want := bruteForceLocal(q, tg, sch)
		got := Score(q, tg, sch, nil)
		if got != want {
			t.Fatalf("trial %d: S-W %d, brute force %d", trial, got, want)
		}
	}
}

func TestBruteForceSanity(t *testing.T) {
	sch := score.MustScheme(score.UnitDNA(), -1)
	q := seq.DNA.MustEncode("TACG")
	tg := seq.DNA.MustEncode("AGTACGCCTAG")
	// Too long for full brute force, but the paper example with a shorter
	// target window still gives 4.
	if got := bruteForceLocal(q, tg[2:6], sch); got != 4 {
		t.Fatalf("brute force on paper example window = %d, want 4", got)
	}
}
