package align

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/score"
	"repro/internal/seq"
)

var unitScheme = score.MustScheme(score.UnitDNA(), -1)

func TestScorePaperExample(t *testing.T) {
	// Paper Section 2.2: query TACG against target AGTACGCCTAG with the
	// unit matrix gives a maximum alignment score of 4 (TACG = TACG).
	q := seq.DNA.MustEncode("TACG")
	tgt := seq.DNA.MustEncode("AGTACGCCTAG")
	if got := Score(q, tgt, unitScheme, nil); got != 4 {
		t.Fatalf("paper example score = %d, want 4", got)
	}
}

func TestAlignPaperExample(t *testing.T) {
	q := seq.DNA.MustEncode("TACG")
	tgt := seq.DNA.MustEncode("AGTACGCCTAG")
	a, err := Align(q, tgt, unitScheme)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != 4 {
		t.Fatalf("score = %d, want 4", a.Score)
	}
	if a.QueryStart != 0 || a.QueryEnd != 4 || a.TargetStart != 2 || a.TargetEnd != 6 {
		t.Fatalf("coordinates = %+v", a.Hit)
	}
	if a.CIGAR() != "4M" {
		t.Fatalf("CIGAR = %q, want 4M", a.CIGAR())
	}
	if a.Identity() != 1.0 {
		t.Fatalf("identity = %v", a.Identity())
	}
	if err := a.Validate(len(q), len(tgt)); err != nil {
		t.Fatal(err)
	}
}

func TestScoreEmptyInputs(t *testing.T) {
	q := seq.DNA.MustEncode("ACGT")
	if Score(nil, q, unitScheme, nil) != 0 || Score(q, nil, unitScheme, nil) != 0 {
		t.Fatal("empty inputs must score 0")
	}
	a, err := Align(nil, q, unitScheme)
	if err != nil || a.Score != 0 {
		t.Fatal("empty alignment must be zero")
	}
}

func TestScoreNoPositiveAlignment(t *testing.T) {
	q := seq.DNA.MustEncode("AAAA")
	tgt := seq.DNA.MustEncode("CCCC")
	if got := Score(q, tgt, unitScheme, nil); got != 0 {
		t.Fatalf("score = %d, want 0", got)
	}
	a, err := Align(q, tgt, unitScheme)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != 0 || len(a.Ops) != 0 {
		t.Fatalf("expected empty alignment, got %+v", a)
	}
}

func TestAlignWithGaps(t *testing.T) {
	// The target carries an extra C in the middle of an otherwise exact
	// match, so the optimal alignment must open a deletion gap.
	q := seq.DNA.MustEncode("AAAATTTT")
	tgt := seq.DNA.MustEncode("AAAACTTTT")
	a, err := Align(q, tgt, unitScheme)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != 7 { // 8 matches - 1 gap
		t.Fatalf("score = %d, want 7", a.Score)
	}
	if !strings.Contains(a.CIGAR(), "D") {
		t.Fatalf("expected a deletion in %q", a.CIGAR())
	}
	if err := a.Validate(len(q), len(tgt)); err != nil {
		t.Fatal(err)
	}
	if got := RescoreOps(a, q, tgt, unitScheme.Matrix, unitScheme.Gap); got != a.Score {
		t.Fatalf("rescore = %d, want %d", got, a.Score)
	}
}

func TestAlignInsertion(t *testing.T) {
	// Query has an extra residue relative to the target, forcing an
	// insertion gap in the optimal alignment.
	q := seq.DNA.MustEncode("AAAACTTTT")
	tgt := seq.DNA.MustEncode("AAAATTTT")
	a, err := Align(q, tgt, unitScheme)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != 7 {
		t.Fatalf("score = %d, want 7", a.Score)
	}
	if !strings.Contains(a.CIGAR(), "I") {
		t.Fatalf("expected an insertion in %q", a.CIGAR())
	}
}

func TestAlignScoreAgreesWithScore(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sch := score.MustScheme(score.BLOSUM62(), -6)
	for trial := 0; trial < 50; trial++ {
		q := randomProtein(rng, 5+rng.Intn(30))
		tgt := randomProtein(rng, 5+rng.Intn(120))
		want := Score(q, tgt, sch, nil)
		a, err := Align(q, tgt, sch)
		if err != nil {
			t.Fatal(err)
		}
		if a.Score != want {
			t.Fatalf("trial %d: Align score %d != Score %d", trial, a.Score, want)
		}
		if a.Score > 0 {
			if err := a.Validate(len(q), len(tgt)); err != nil {
				t.Fatal(err)
			}
			if got := RescoreOps(a, q, tgt, sch.Matrix, sch.Gap); got != a.Score {
				t.Fatalf("trial %d: rescore %d != %d", trial, got, a.Score)
			}
		}
	}
}

func TestScoreSymmetricMatrixProperty(t *testing.T) {
	// With a symmetric matrix, swapping query and target must not change
	// the optimal score.
	f := func(aSeed, bSeed int64) bool {
		rng := rand.New(rand.NewSource(aSeed ^ bSeed<<1))
		q := randomDNA(rng, 1+rng.Intn(20))
		tgt := randomDNA(rng, 1+rng.Intn(40))
		return Score(q, tgt, unitScheme, nil) == Score(tgt, q, unitScheme, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestScoreSubstringProperty(t *testing.T) {
	// If the query is an exact substring of the target, the score is at
	// least len(query) * min-diagonal-score for the unit matrix (= length).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tgt := randomDNA(rng, 20+rng.Intn(60))
		start := rng.Intn(len(tgt) - 5)
		l := 3 + rng.Intn(len(tgt)-start-3)
		q := tgt[start : start+l]
		return Score(q, tgt, unitScheme, nil) >= l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestScoreMonotoneInGapPenalty(t *testing.T) {
	// A harsher gap penalty can never increase the optimal score.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		q := randomDNA(rng, 5+rng.Intn(20))
		tgt := randomDNA(rng, 10+rng.Intn(50))
		lenient := Score(q, tgt, score.MustScheme(score.UnitDNA(), -1), nil)
		harsh := Score(q, tgt, score.MustScheme(score.UnitDNA(), -3), nil)
		if harsh > lenient {
			t.Fatalf("harsh gap score %d > lenient %d", harsh, lenient)
		}
	}
}

func TestSearchDatabase(t *testing.T) {
	db, err := seq.DatabaseFromStrings(seq.DNA,
		"AGTACGCCTAG", // contains TACG exactly (score 4)
		"CCCCCCCC",    // no alignment
		"TTTACGTT",    // contains TACG exactly (score 4)
		"TACCG",       // TAC-G with one gap (score 3)
	)
	if err != nil {
		t.Fatal(err)
	}
	q := seq.DNA.MustEncode("TACG")
	var st Stats
	hits, err := SearchDatabase(db, q, unitScheme, Options{MinScore: 3, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Fatalf("got %d hits, want 3: %+v", len(hits), hits)
	}
	if hits[0].Score != 4 || hits[1].Score != 4 || hits[2].Score != 3 {
		t.Fatalf("hit scores wrong: %+v", hits)
	}
	if hits[0].SeqIndex != 0 || hits[1].SeqIndex != 2 || hits[2].SeqIndex != 3 {
		t.Fatalf("hit order wrong: %+v", hits)
	}
	if st.SequencesScanned != 4 {
		t.Fatalf("SequencesScanned = %d", st.SequencesScanned)
	}
	wantCols := int64(11 + 8 + 8 + 5)
	if st.ColumnsExpanded != wantCols {
		t.Fatalf("ColumnsExpanded = %d, want %d", st.ColumnsExpanded, wantCols)
	}
	if st.CellsComputed != wantCols*int64(len(q)) {
		t.Fatalf("CellsComputed = %d", st.CellsComputed)
	}
}

func TestSearchDatabaseMinScoreFilter(t *testing.T) {
	db, _ := seq.DatabaseFromStrings(seq.DNA, "AGTACGCCTAG", "TACCG")
	q := seq.DNA.MustEncode("TACG")
	hits, err := SearchDatabase(db, q, unitScheme, Options{MinScore: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].SeqIndex != 0 {
		t.Fatalf("hits = %+v", hits)
	}
}

func TestSearchDatabaseMaxHits(t *testing.T) {
	db, _ := seq.DatabaseFromStrings(seq.DNA, "TACG", "TACG", "TACG")
	q := seq.DNA.MustEncode("TACG")
	hits, err := SearchDatabase(db, q, unitScheme, Options{MinScore: 1, MaxHits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("MaxHits not applied: %d hits", len(hits))
	}
}

func TestSearchDatabaseEValues(t *testing.T) {
	db, _ := seq.DatabaseFromStrings(seq.DNA, "AGTACGCCTAG", "GGGGGG")
	q := seq.DNA.MustEncode("TACG")
	ka, err := score.Params(score.UnitDNA(), nil)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := SearchDatabase(db, q, unitScheme, Options{MinScore: 1, KA: &ka})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].EValue <= 0 {
		t.Fatalf("expected positive E-values, got %+v", hits)
	}
}

func TestSearchDatabaseErrors(t *testing.T) {
	db, _ := seq.DatabaseFromStrings(seq.DNA, "ACGT")
	q := seq.DNA.MustEncode("ACG")
	if _, err := SearchDatabase(db, q, unitScheme, Options{MinScore: 0}); err == nil {
		t.Fatal("expected error for MinScore 0")
	}
	if _, err := SearchDatabase(db, nil, unitScheme, Options{MinScore: 1}); err == nil {
		t.Fatal("expected error for empty query")
	}
	if _, err := SearchDatabase(db, q, score.Scheme{}, Options{MinScore: 1}); err == nil {
		t.Fatal("expected error for invalid scheme")
	}
}

func TestAlignHit(t *testing.T) {
	db, _ := seq.DatabaseFromStrings(seq.DNA, "AGTACGCCTAG")
	q := seq.DNA.MustEncode("TACG")
	hits, err := SearchDatabase(db, q, unitScheme, Options{MinScore: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := AlignHit(db, q, unitScheme, hits[0])
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != hits[0].Score || a.SeqID != "seq0" {
		t.Fatalf("AlignHit mismatch: %+v vs %+v", a.Hit, hits[0])
	}
	if _, err := AlignHit(db, q, unitScheme, Hit{SeqIndex: 5}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestAlignmentFormat(t *testing.T) {
	q := seq.DNA.MustEncode("TACG")
	tgt := seq.DNA.MustEncode("AGTACGCCTAG")
	a, _ := Align(q, tgt, unitScheme)
	out := a.Format(seq.DNA, q, tgt)
	if !strings.Contains(out, "TACG") || !strings.Contains(out, "||||") {
		t.Fatalf("format output missing content:\n%s", out)
	}
}

func TestAlignmentValidateRejectsBadOps(t *testing.T) {
	a := Alignment{Hit: Hit{QueryStart: 0, QueryEnd: 2, TargetStart: 0, TargetEnd: 2}, Ops: []Op{OpMatch}}
	if err := a.Validate(4, 4); err == nil {
		t.Fatal("expected span/op mismatch error")
	}
	a = Alignment{Hit: Hit{QueryStart: 2, QueryEnd: 1}}
	if err := a.Validate(4, 4); err == nil {
		t.Fatal("expected bad span error")
	}
	a = Alignment{Hit: Hit{QueryEnd: 1, TargetEnd: 1}, Ops: []Op{'Z'}}
	if err := a.Validate(4, 4); err == nil {
		t.Fatal("expected unknown op error")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{ColumnsExpanded: 1, CellsComputed: 2, SequencesScanned: 3}
	b := Stats{ColumnsExpanded: 10, CellsComputed: 20, SequencesScanned: 30}
	a.Add(b)
	if a.ColumnsExpanded != 11 || a.CellsComputed != 22 || a.SequencesScanned != 33 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func randomDNA(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(4))
	}
	return out
}

func randomProtein(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(20))
	}
	return out
}
