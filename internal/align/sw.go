package align

import (
	"fmt"
	"sort"

	"repro/internal/score"
	"repro/internal/seq"
)

// Stats accumulates the work counters the paper uses to compare the
// filtering behaviour of OASIS and S-W (Figure 4).
type Stats struct {
	// ColumnsExpanded is the number of dynamic-programming columns filled
	// (for S-W, one column per target symbol per sequence).
	ColumnsExpanded int64
	// CellsComputed is the number of individual matrix cells evaluated.
	CellsComputed int64
	// SequencesScanned is the number of database sequences visited.
	SequencesScanned int64
}

// Add merges other into s.
func (s *Stats) Add(other Stats) {
	s.ColumnsExpanded += other.ColumnsExpanded
	s.CellsComputed += other.CellsComputed
	s.SequencesScanned += other.SequencesScanned
}

// Score computes the optimal Smith-Waterman local-alignment score between a
// query and a target (encoded symbols), using O(min) memory (two columns).
// Stats, when non-nil, is updated with the work performed.
func Score(query, target []byte, sch score.Scheme, st *Stats) int {
	m := len(query)
	best := 0
	if m == 0 || len(target) == 0 {
		return 0
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	gap := sch.Gap
	for j := 1; j <= len(target); j++ {
		tj := target[j-1]
		for i := 1; i <= m; i++ {
			s := prev[i-1] + sch.Matrix.Score(query[i-1], tj)
			if v := prev[i] + gap; v > s {
				s = v
			}
			if v := cur[i-1] + gap; v > s {
				s = v
			}
			if s < 0 {
				s = 0
			}
			cur[i] = s
			if s > best {
				best = s
			}
		}
		prev, cur = cur, prev
	}
	if st != nil {
		st.ColumnsExpanded += int64(len(target))
		st.CellsComputed += int64(len(target)) * int64(m)
	}
	return best
}

// Backpointer codes for the traceback matrix.
const (
	tbNone byte = iota
	tbDiag
	tbUp   // insertion: consume query residue (gap in target)
	tbLeft // deletion: consume target residue (gap in query)
)

// Align computes the optimal local alignment between query and target and
// returns it with a full traceback.  Memory is O(m*n); intended for pairwise
// use and for recovering the operations of hits found by database searches.
func Align(query, target []byte, sch score.Scheme) (Alignment, error) {
	if err := sch.Validate(); err != nil {
		return Alignment{}, err
	}
	m, n := len(query), len(target)
	if m == 0 || n == 0 {
		return Alignment{}, nil
	}
	// h is (m+1) x (n+1), row-major by query index.
	h := make([]int, (m+1)*(n+1))
	tb := make([]byte, (m+1)*(n+1))
	idx := func(i, j int) int { return i*(n+1) + j }
	best, bi, bj := 0, 0, 0
	gap := sch.Gap
	for i := 1; i <= m; i++ {
		qi := query[i-1]
		for j := 1; j <= n; j++ {
			sDiag := h[idx(i-1, j-1)] + sch.Matrix.Score(qi, target[j-1])
			sUp := h[idx(i-1, j)] + gap
			sLeft := h[idx(i, j-1)] + gap
			v, p := 0, tbNone
			if sDiag > v {
				v, p = sDiag, tbDiag
			}
			if sUp > v {
				v, p = sUp, tbUp
			}
			if sLeft > v {
				v, p = sLeft, tbLeft
			}
			h[idx(i, j)] = v
			tb[idx(i, j)] = p
			if v > best {
				best, bi, bj = v, i, j
			}
		}
	}
	if best == 0 {
		return Alignment{}, nil
	}
	var rev []Op
	i, j := bi, bj
	for i > 0 && j > 0 && tb[idx(i, j)] != tbNone {
		switch tb[idx(i, j)] {
		case tbDiag:
			if query[i-1] == target[j-1] {
				rev = append(rev, OpMatch)
			} else {
				rev = append(rev, OpMismatch)
			}
			i--
			j--
		case tbUp:
			rev = append(rev, OpInsert)
			i--
		case tbLeft:
			rev = append(rev, OpDelete)
			j--
		}
	}
	ops := make([]Op, len(rev))
	for k := range rev {
		ops[k] = rev[len(rev)-1-k]
	}
	return Alignment{
		Hit: Hit{
			Score:       best,
			QueryStart:  i,
			QueryEnd:    bi,
			TargetStart: j,
			TargetEnd:   bj,
		},
		Ops: ops,
	}, nil
}

// Options configures a database search.
type Options struct {
	// MinScore is the minimum raw alignment score for a hit to be
	// reported.  Must be >= 1.
	MinScore int
	// Stats, when non-nil, receives work counters.
	Stats *Stats
	// KA, when non-nil, is used to attach E-values to hits.
	KA *score.KarlinAltschul
	// MaxHits limits the number of hits returned (0 = unlimited).
	MaxHits int
}

// SearchDatabase runs Smith-Waterman between the query and every database
// sequence and reports the single strongest alignment per sequence whose
// score reaches MinScore, sorted by decreasing score (ties broken by
// sequence index).  This duplicates the reporting behaviour the paper uses
// for both S-W and OASIS.
func SearchDatabase(db *seq.Database, query []byte, sch score.Scheme, opts Options) ([]Hit, error) {
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	if opts.MinScore < 1 {
		return nil, fmt.Errorf("align: MinScore must be >= 1, got %d", opts.MinScore)
	}
	if len(query) == 0 {
		return nil, fmt.Errorf("align: empty query")
	}
	var hits []Hit
	for i := 0; i < db.NumSequences(); i++ {
		target := db.Sequence(i).Residues
		if opts.Stats != nil {
			opts.Stats.SequencesScanned++
		}
		s := Score(query, target, sch, opts.Stats)
		if s < opts.MinScore {
			continue
		}
		h := Hit{SeqIndex: i, SeqID: db.Sequence(i).ID, Score: s}
		if opts.KA != nil {
			h.EValue = opts.KA.EValue(s, len(query), db.TotalResidues())
		}
		hits = append(hits, h)
	}
	SortHits(hits)
	if opts.MaxHits > 0 && len(hits) > opts.MaxHits {
		hits = hits[:opts.MaxHits]
	}
	return hits, nil
}

// AlignHit recovers the full alignment (with coordinates and operations) for
// a hit previously reported by SearchDatabase.
func AlignHit(db *seq.Database, query []byte, sch score.Scheme, h Hit) (Alignment, error) {
	if h.SeqIndex < 0 || h.SeqIndex >= db.NumSequences() {
		return Alignment{}, fmt.Errorf("align: hit sequence index %d out of range", h.SeqIndex)
	}
	a, err := Align(query, db.Sequence(h.SeqIndex).Residues, sch)
	if err != nil {
		return Alignment{}, err
	}
	a.SeqIndex = h.SeqIndex
	a.SeqID = h.SeqID
	a.EValue = h.EValue
	return a, nil
}

// SortHits orders hits by decreasing score, breaking ties by ascending
// sequence index so results are deterministic.
func SortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].SeqIndex < hits[j].SeqIndex
	})
}
