// Package align implements the Smith-Waterman exact local-alignment
// algorithm (the accurate baseline the paper compares OASIS against),
// including full traceback, per-sequence database search with a score
// threshold, and the column-count instrumentation used by Figure 4.
package align

import (
	"fmt"
	"strings"

	"repro/internal/seq"
)

// Op is a single local-alignment operation.
type Op byte

const (
	// OpMatch aligns a query residue with an identical target residue.
	OpMatch Op = 'M'
	// OpMismatch aligns a query residue with a different target residue.
	OpMismatch Op = 'X'
	// OpInsert consumes a query residue against a gap in the target
	// (label 4 in the paper's Figure 1).
	OpInsert Op = 'I'
	// OpDelete consumes a target residue against a gap in the query
	// (label 3 in the paper's Figure 1).
	OpDelete Op = 'D'
)

// Hit describes one local alignment between a query and a database
// sequence.  Coordinates are zero-based and end-exclusive.
type Hit struct {
	// SeqIndex is the index of the target sequence in the database.
	SeqIndex int
	// SeqID is the identifier of the target sequence.
	SeqID string
	// Score is the raw alignment score.
	Score int
	// QueryStart/QueryEnd delimit the aligned query region.
	QueryStart, QueryEnd int
	// TargetStart/TargetEnd delimit the aligned region within the target
	// sequence (local coordinates).
	TargetStart, TargetEnd int
	// EValue is the expectation value for the hit when statistics were
	// requested, otherwise 0.
	EValue float64
}

// Alignment is a hit plus the operation-level traceback.
type Alignment struct {
	Hit
	// Ops lists the alignment operations from the start of the aligned
	// region to its end.
	Ops []Op
}

// Identity returns the fraction of aligned columns that are exact matches.
func (a Alignment) Identity() float64 {
	if len(a.Ops) == 0 {
		return 0
	}
	matches := 0
	for _, op := range a.Ops {
		if op == OpMatch {
			matches++
		}
	}
	return float64(matches) / float64(len(a.Ops))
}

// CIGAR renders the operations as a compact CIGAR-like string, e.g.
// "5M1X2I3M".
func (a Alignment) CIGAR() string {
	if len(a.Ops) == 0 {
		return ""
	}
	var sb strings.Builder
	run := 1
	for i := 1; i <= len(a.Ops); i++ {
		if i < len(a.Ops) && a.Ops[i] == a.Ops[i-1] {
			run++
			continue
		}
		fmt.Fprintf(&sb, "%d%c", run, a.Ops[i-1])
		run = 1
	}
	return sb.String()
}

// Format renders the alignment as the familiar three-line text block
// (query / midline / target) given the decoded residue strings of the full
// query and target sequences.
func (a Alignment) Format(alpha *seq.Alphabet, query, target []byte) string {
	var qLine, mLine, tLine strings.Builder
	qi, ti := a.QueryStart, a.TargetStart
	for _, op := range a.Ops {
		switch op {
		case OpMatch, OpMismatch:
			qLine.WriteByte(alpha.Letter(query[qi]))
			tLine.WriteByte(alpha.Letter(target[ti]))
			if op == OpMatch {
				mLine.WriteByte('|')
			} else {
				mLine.WriteByte(' ')
			}
			qi++
			ti++
		case OpInsert:
			qLine.WriteByte(alpha.Letter(query[qi]))
			tLine.WriteByte('-')
			mLine.WriteByte(' ')
			qi++
		case OpDelete:
			qLine.WriteByte('-')
			tLine.WriteByte(alpha.Letter(target[ti]))
			mLine.WriteByte(' ')
			ti++
		}
	}
	return fmt.Sprintf("Query  %4d %s %d\n            %s\nTarget %4d %s %d\n",
		a.QueryStart+1, qLine.String(), a.QueryEnd,
		mLine.String(),
		a.TargetStart+1, tLine.String(), a.TargetEnd)
}

// Validate checks internal consistency of the alignment against the query
// and target lengths: coordinates in range and operation counts consistent
// with the aligned spans.  It is used by property tests.
func (a Alignment) Validate(queryLen, targetLen int) error {
	if a.QueryStart < 0 || a.QueryEnd > queryLen || a.QueryStart > a.QueryEnd {
		return fmt.Errorf("align: bad query span [%d,%d) for length %d", a.QueryStart, a.QueryEnd, queryLen)
	}
	if a.TargetStart < 0 || a.TargetEnd > targetLen || a.TargetStart > a.TargetEnd {
		return fmt.Errorf("align: bad target span [%d,%d) for length %d", a.TargetStart, a.TargetEnd, targetLen)
	}
	var q, t int
	for _, op := range a.Ops {
		switch op {
		case OpMatch, OpMismatch:
			q++
			t++
		case OpInsert:
			q++
		case OpDelete:
			t++
		default:
			return fmt.Errorf("align: unknown op %q", op)
		}
	}
	if q != a.QueryEnd-a.QueryStart {
		return fmt.Errorf("align: ops consume %d query residues, span is %d", q, a.QueryEnd-a.QueryStart)
	}
	if t != a.TargetEnd-a.TargetStart {
		return fmt.Errorf("align: ops consume %d target residues, span is %d", t, a.TargetEnd-a.TargetStart)
	}
	return nil
}

// RescoreOps recomputes the alignment score from the operations; used by
// tests to confirm that traceback and score agree.
func RescoreOps(a Alignment, query, target []byte, matrix interface {
	Score(a, b byte) int
}, gap int) int {
	s := 0
	qi, ti := a.QueryStart, a.TargetStart
	for _, op := range a.Ops {
		switch op {
		case OpMatch, OpMismatch:
			s += matrix.Score(query[qi], target[ti])
			qi++
			ti++
		case OpInsert:
			s += gap
			qi++
		case OpDelete:
			s += gap
			ti++
		}
	}
	return s
}
