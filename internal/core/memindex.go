package core

import (
	"fmt"

	"repro/internal/seq"
	"repro/internal/suffixtree"
)

// MemoryIndex adapts an in-memory suffix tree (and its database) to the
// Index interface.  It is the fastest index for data sets that fit in
// memory and serves as the reference implementation the disk index is tested
// against.
//
// Internal NodeRefs are the suffix tree's own node identifiers (the root is
// always node 0), so translation between the two spaces is free; leaf
// NodeRefs are suffix start positions, exactly as for the disk index.
//
// Reporting an accepted node must enumerate every leaf below it, which for
// near-root nodes is a large fraction of the tree; walking the
// first-child/next-sibling links there costs one random node fetch per edge.
// The adapter therefore precomputes one Euler tour at construction: leafPos
// lists every leaf's suffix position in depth-first order, and each node's
// subtree owns the contiguous range leafPos[leafLo[n]:leafHi[n]], so
// LeafPositions is a linear scan of a packed array in exactly the order the
// link walk would have produced.
type MemoryIndex struct {
	tree    *suffixtree.Tree
	db      *seq.Database
	textLen int64
	leafPos []int64
	leafLo  []int32
	leafHi  []int32
}

// NewMemoryIndex builds the adapter.  The tree must have been built over the
// database.
func NewMemoryIndex(tree *suffixtree.Tree, db *seq.Database) (*MemoryIndex, error) {
	if tree == nil || db == nil {
		return nil, fmt.Errorf("core: nil tree or database")
	}
	if tree.DB() != db {
		return nil, fmt.Errorf("core: tree was not built over the supplied database")
	}
	m := &MemoryIndex{
		tree:    tree,
		db:      db,
		textLen: int64(len(tree.Text())),
		leafPos: make([]int64, 0, tree.NumLeaves()),
		leafLo:  make([]int32, tree.NumNodes()),
		leafHi:  make([]int32, tree.NumNodes()),
	}
	var dfs func(n suffixtree.NodeID)
	dfs = func(n suffixtree.NodeID) {
		m.leafLo[n] = int32(len(m.leafPos))
		tree.VisitEdges(n, func(c suffixtree.NodeID, _ []byte, suffixStart int64) bool {
			if suffixStart >= 0 {
				m.leafLo[c] = int32(len(m.leafPos))
				m.leafPos = append(m.leafPos, suffixStart)
				m.leafHi[c] = int32(len(m.leafPos))
			} else {
				dfs(c)
			}
			return true
		})
		m.leafHi[n] = int32(len(m.leafPos))
	}
	dfs(tree.Root())
	return m, nil
}

// BuildMemoryIndex constructs the suffix tree (Ukkonen) for the database and
// wraps it in a MemoryIndex.
func BuildMemoryIndex(db *seq.Database) (*MemoryIndex, error) {
	tree, err := suffixtree.BuildUkkonen(db)
	if err != nil {
		return nil, err
	}
	return NewMemoryIndex(tree, db)
}

// Tree returns the underlying suffix tree.
func (m *MemoryIndex) Tree() *suffixtree.Tree { return m.tree }

// Root implements Index.
func (m *MemoryIndex) Root() NodeRef { return InternalRef(0) }

func (m *MemoryIndex) resolve(ref NodeRef) (suffixtree.NodeID, error) {
	if ref.IsLeaf() {
		// A leaf's position is its reference; no node lookup is needed (or
		// possible: leaves are addressed by position everywhere).
		if pos := ref.LeafPos(); pos < 0 || pos >= m.textLen {
			return 0, fmt.Errorf("core: unknown leaf position %d", pos)
		}
		return 0, nil
	}
	idx := ref.InternalIndex()
	if idx < 0 || idx >= int64(m.tree.NumNodes()) {
		return 0, fmt.Errorf("core: internal node index %d out of range", idx)
	}
	id := suffixtree.NodeID(idx)
	if m.tree.IsLeaf(id) {
		return 0, fmt.Errorf("core: node %d is a leaf, not an internal node", idx)
	}
	return id, nil
}

// VisitChildren implements Index.
func (m *MemoryIndex) VisitChildren(ref NodeRef, parentDepth int, fn func(child NodeRef, label EdgeLabel) error) error {
	id, err := m.resolve(ref)
	if err != nil {
		return err
	}
	if ref.IsLeaf() {
		return nil // leaves have no children
	}
	// One label wrapper is reused for every child: converting a pointer to
	// the EdgeLabel interface does not allocate, and the interface contract
	// only guarantees validity within the callback.
	label := &ByteLabel{}
	var visitErr error
	m.tree.VisitEdges(id, func(c suffixtree.NodeID, edge []byte, suffixStart int64) bool {
		var childRef NodeRef
		if suffixStart >= 0 {
			childRef = LeafRef(suffixStart)
		} else {
			childRef = InternalRef(int64(c))
		}
		label.B = edge
		visitErr = fn(childRef, label)
		return visitErr == nil
	})
	return visitErr
}

// LeafPositions implements Index.
func (m *MemoryIndex) LeafPositions(ref NodeRef, fn func(pos int64) bool) error {
	id, err := m.resolve(ref)
	if err != nil {
		return err
	}
	if ref.IsLeaf() {
		fn(ref.LeafPos())
		return nil
	}
	for _, pos := range m.leafPos[m.leafLo[id]:m.leafHi[id]] {
		if !fn(pos) {
			return nil
		}
	}
	return nil
}

// Catalog implements Index.
func (m *MemoryIndex) Catalog() Catalog { return dbCatalog{db: m.db} }

// dbCatalog adapts a seq.Database to the Catalog interface.
type dbCatalog struct{ db *seq.Database }

func (c dbCatalog) Alphabet() *seq.Alphabet { return c.db.Alphabet() }
func (c dbCatalog) NumSequences() int       { return c.db.NumSequences() }
func (c dbCatalog) SequenceID(i int) string { return c.db.Sequence(i).ID }
func (c dbCatalog) SequenceLength(i int) int {
	return c.db.Sequence(i).Len()
}
func (c dbCatalog) TotalResidues() int64 { return c.db.TotalResidues() }
func (c dbCatalog) Locate(pos int64) (int, int64, error) {
	return c.db.Locate(pos)
}
func (c dbCatalog) Residues(i int) ([]byte, error) {
	if i < 0 || i >= c.db.NumSequences() {
		return nil, fmt.Errorf("core: sequence index %d out of range", i)
	}
	return c.db.Sequence(i).Residues, nil
}

// NewDatabaseCatalog wraps a database in the Catalog interface; exported for
// use by other packages (e.g. baseline searchers that want uniform
// reporting).
func NewDatabaseCatalog(db *seq.Database) Catalog { return dbCatalog{db: db} }

var _ Index = (*MemoryIndex)(nil)
