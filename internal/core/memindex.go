package core

import (
	"fmt"

	"repro/internal/seq"
	"repro/internal/suffixtree"
)

// MemoryIndex adapts an in-memory suffix tree (and its database) to the
// Index interface.  It is the fastest index for data sets that fit in
// memory and serves as the reference implementation the disk index is tested
// against.
//
// Internal NodeRefs are the suffix tree's own node identifiers (the root is
// always node 0), so translation between the two spaces is free; leaf
// NodeRefs are suffix start positions, exactly as for the disk index.
type MemoryIndex struct {
	tree *suffixtree.Tree
	db   *seq.Database
	// leafOf maps suffix positions to leaf NodeIDs; it is built lazily and
	// only consulted when a caller addresses a leaf directly (reporting
	// never needs it: a leaf's position is its reference).
	leafOf map[int64]suffixtree.NodeID
}

// NewMemoryIndex builds the adapter.  The tree must have been built over the
// database.
func NewMemoryIndex(tree *suffixtree.Tree, db *seq.Database) (*MemoryIndex, error) {
	if tree == nil || db == nil {
		return nil, fmt.Errorf("core: nil tree or database")
	}
	if tree.DB() != db {
		return nil, fmt.Errorf("core: tree was not built over the supplied database")
	}
	m := &MemoryIndex{
		tree:   tree,
		db:     db,
		leafOf: map[int64]suffixtree.NodeID{},
	}
	tree.Walk(tree.Root(), func(n suffixtree.NodeID) bool {
		if tree.IsLeaf(n) {
			m.leafOf[tree.SuffixStart(n)] = n
		}
		return true
	})
	return m, nil
}

// BuildMemoryIndex constructs the suffix tree (Ukkonen) for the database and
// wraps it in a MemoryIndex.
func BuildMemoryIndex(db *seq.Database) (*MemoryIndex, error) {
	tree, err := suffixtree.BuildUkkonen(db)
	if err != nil {
		return nil, err
	}
	return NewMemoryIndex(tree, db)
}

// Tree returns the underlying suffix tree.
func (m *MemoryIndex) Tree() *suffixtree.Tree { return m.tree }

// Root implements Index.
func (m *MemoryIndex) Root() NodeRef { return InternalRef(0) }

func (m *MemoryIndex) resolve(ref NodeRef) (suffixtree.NodeID, error) {
	if ref.IsLeaf() {
		id, ok := m.leafOf[ref.LeafPos()]
		if !ok {
			return 0, fmt.Errorf("core: unknown leaf position %d", ref.LeafPos())
		}
		return id, nil
	}
	idx := ref.InternalIndex()
	if idx < 0 || idx >= int64(m.tree.NumNodes()) {
		return 0, fmt.Errorf("core: internal node index %d out of range", idx)
	}
	id := suffixtree.NodeID(idx)
	if m.tree.IsLeaf(id) {
		return 0, fmt.Errorf("core: node %d is a leaf, not an internal node", idx)
	}
	return id, nil
}

// VisitChildren implements Index.
func (m *MemoryIndex) VisitChildren(ref NodeRef, parentDepth int, fn func(child NodeRef, label EdgeLabel) error) error {
	id, err := m.resolve(ref)
	if err != nil {
		return err
	}
	// One label wrapper is reused for every child: converting a pointer to
	// the EdgeLabel interface does not allocate, and the interface contract
	// only guarantees validity within the callback.
	label := &ByteLabel{}
	for c := m.tree.FirstChild(id); c != suffixtree.NoNode; c = m.tree.NextSibling(c) {
		var childRef NodeRef
		if m.tree.IsLeaf(c) {
			childRef = LeafRef(m.tree.SuffixStart(c))
		} else {
			childRef = InternalRef(int64(c))
		}
		label.B = m.tree.EdgeLabel(c)
		if err := fn(childRef, label); err != nil {
			return err
		}
	}
	return nil
}

// LeafPositions implements Index.
func (m *MemoryIndex) LeafPositions(ref NodeRef, fn func(pos int64) bool) error {
	if ref.IsLeaf() {
		if _, err := m.resolve(ref); err != nil {
			return err
		}
		fn(ref.LeafPos())
		return nil
	}
	id, err := m.resolve(ref)
	if err != nil {
		return err
	}
	m.tree.LeafPositions(id, fn)
	return nil
}

// Catalog implements Index.
func (m *MemoryIndex) Catalog() Catalog { return dbCatalog{db: m.db} }

// dbCatalog adapts a seq.Database to the Catalog interface.
type dbCatalog struct{ db *seq.Database }

func (c dbCatalog) Alphabet() *seq.Alphabet { return c.db.Alphabet() }
func (c dbCatalog) NumSequences() int       { return c.db.NumSequences() }
func (c dbCatalog) SequenceID(i int) string { return c.db.Sequence(i).ID }
func (c dbCatalog) SequenceLength(i int) int {
	return c.db.Sequence(i).Len()
}
func (c dbCatalog) TotalResidues() int64 { return c.db.TotalResidues() }
func (c dbCatalog) Locate(pos int64) (int, int64, error) {
	return c.db.Locate(pos)
}
func (c dbCatalog) Residues(i int) ([]byte, error) {
	if i < 0 || i >= c.db.NumSequences() {
		return nil, fmt.Errorf("core: sequence index %d out of range", i)
	}
	return c.db.Sequence(i).Residues, nil
}

// NewDatabaseCatalog wraps a database in the Catalog interface; exported for
// use by other packages (e.g. baseline searchers that want uniform
// reporting).
func NewDatabaseCatalog(db *seq.Database) Catalog { return dbCatalog{db: db} }

var _ Index = (*MemoryIndex)(nil)
