package core

import (
	"context"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/score"
)

// negInf is the pruned-score sentinel (alias of score.NegInf).
const negInf = score.NegInf

// Options configures an OASIS search.
type Options struct {
	// Scheme is the substitution matrix and (linear) gap penalty.
	Scheme score.Scheme
	// MinScore is the minimum alignment score for a sequence to be
	// reported (paper parameter minScore; derived from an E-value via
	// score.KarlinAltschul.MinScore).  Must be >= 1.
	MinScore int
	// MaxResults stops the search after this many sequences have been
	// reported (0 = report every qualifying sequence).  Because results
	// arrive in decreasing score order this yields the top-k sequences.
	MaxResults int
	// KA, when non-nil, attaches E-values to reported hits.
	KA *score.KarlinAltschul
	// Stats, when non-nil, accumulates work counters.
	Stats *Stats
	// DisableLiveBand turns off the live-band DP kernel and sweeps every
	// cell of every column (rows 1..m; row 0 is provably dead below the
	// root and is never computed in either mode), as the original
	// implementation did.  The search result is identical either way; the
	// flag exists so tests and benchmarks can quantify the band's
	// CellsComputed reduction.
	DisableLiveBand bool
	// Scratch, when non-nil, supplies reusable search buffers so warm
	// engines avoid per-query allocation.  A Scratch must serve at most one
	// search at a time; results are identical with or without it.
	Scratch *Scratch
	// Context, when non-nil, cancels an in-flight search from inside the DP
	// sweep: the searcher polls Context.Err() every CancelPollColumns
	// columns, so even a long hit-less stretch (where no report callback
	// runs that a caller could cancel from) observes cancellation promptly.
	// A cancelled search returns the context's error.
	Context context.Context
	// CancelPollColumns is how many DP columns may be swept between
	// cancellation polls (0 selects DefaultCancelPollColumns; negative
	// disables polling).  Smaller values cancel faster but poll more.
	CancelPollColumns int
	// StrictShards makes a sharded search fail outright when any shard
	// fails, instead of quarantining the shard and completing a degraded
	// stream from the survivors (see Stats.Degraded).  Single-index searches
	// ignore it.
	StrictShards bool
}

// DefaultCancelPollColumns is the default cancellation poll interval: one
// Context.Err() call per this many DP columns keeps poll overhead well under
// the column sweep cost while bounding the work done after cancellation.
const DefaultCancelPollColumns = 256

// Hit is one reported sequence: the strongest local alignment between the
// query and that sequence (OASIS duplicates S-W's one-hit-per-sequence
// reporting, paper Section 3).
type Hit struct {
	// SeqIndex and SeqID identify the database sequence.
	SeqIndex int
	SeqID    string
	// Score is the optimal local-alignment score for this sequence.
	Score int
	// EValue is the expectation value when Options.KA was provided.
	EValue float64
	// QueryEnd is the 1-based query position at which the reported
	// alignment ends.
	QueryEnd int
	// TargetEnd is the 0-based exclusive end offset of the alignment
	// within the target sequence.
	TargetEnd int
	// Rank is the position of this hit in the result stream (1 = first
	// and therefore highest-scoring).
	Rank int
}

// Stats accumulates the work counters used by the paper's filtering
// comparison (Figure 4) and by the ablation benchmarks.
type Stats struct {
	// ColumnsExpanded counts dynamic-programming columns filled in (the
	// paper's filtering metric).
	ColumnsExpanded int64
	// CellsComputed counts individual matrix cells evaluated.
	CellsComputed int64
	// NodesExpanded counts suffix-tree nodes whose children were expanded.
	NodesExpanded int64
	// NodesPushed counts search nodes pushed onto the priority queue.
	NodesPushed int64
	// NodesAccepted counts nodes tagged ACCEPTED.
	NodesAccepted int64
	// NodesUnviable counts nodes discarded as UNVIABLE.
	NodesUnviable int64
	// MaxQueueSize is the high-water mark of the priority queue.
	MaxQueueSize int
	// MaxBandWidth is the widest live band stored on any viable search node
	// (cells, not query length).  Column storage is band-sized, so this also
	// bounds the per-node memory the search ever requested.
	MaxBandWidth int
	// SequencesReported counts reported hits.
	SequencesReported int64
	// Degraded marks a sharded search that lost one or more shards and
	// completed from the survivors: the hit stream is still in decreasing
	// score order but covers only the surviving shards' sequences.
	// ShardErrors carries the per-shard detail.  Options.StrictShards turns
	// degradation into a search error instead.
	Degraded    bool         `json:"degraded,omitempty"`
	ShardErrors []ShardError `json:"shard_errors,omitempty"`
}

// ShardError describes one quarantined shard of a degraded search.
type ShardError struct {
	// Shard is the failed shard's index.
	Shard int `json:"shard"`
	// Err is the failure description.
	Err string `json:"error"`
}

// Add merges other into s.
func (s *Stats) Add(other Stats) {
	s.ColumnsExpanded += other.ColumnsExpanded
	s.CellsComputed += other.CellsComputed
	s.NodesExpanded += other.NodesExpanded
	s.NodesPushed += other.NodesPushed
	s.NodesAccepted += other.NodesAccepted
	s.NodesUnviable += other.NodesUnviable
	s.SequencesReported += other.SequencesReported
	if other.MaxQueueSize > s.MaxQueueSize {
		s.MaxQueueSize = other.MaxQueueSize
	}
	if other.MaxBandWidth > s.MaxBandWidth {
		s.MaxBandWidth = other.MaxBandWidth
	}
	if other.Degraded {
		s.Degraded = true
	}
	s.ShardErrors = append(s.ShardErrors, other.ShardErrors...)
}

// tag is the search-node state from the paper: viable nodes may still yield
// stronger alignments and are expanded further; accepted nodes report their
// subtree's sequences when they reach the head of the queue; unviable nodes
// are discarded immediately and never enter the queue.
type tag uint8

const (
	tagViable tag = iota
	tagAccepted
)

// searchNode is a node of the OASIS search space.  It corresponds to a
// suffix-tree node and carries one column of the dynamic-programming matrix
// (the paper's C vector) plus the path bookkeeping needed for pruning and
// reporting.
type searchNode struct {
	ref   NodeRef
	depth int // symbols on the path from the root
	// band holds the live cells of the node's DP column (the paper's C
	// vector): band[i] is C[cLo+i], the best score of an alignment between
	// Q[1..cLo+i] and a suffix of the node's path.  Every cell outside
	// [cLo, cHi] is negInf by construction and is not stored, so viable-node
	// memory is proportional to the live band (~18% of the full column on
	// the Figure-4 workload) instead of len(query)+1.  Only retained for
	// viable nodes (accepted nodes never expand further).
	band []int
	// cLo/cHi bound the live band within the logical column.
	cLo, cHi int
	// maxScore is the strongest alignment found along this path.
	maxScore int
	// bestQueryEnd / bestPathDepth record where maxScore was achieved, for
	// hit reporting.
	bestQueryEnd  int
	bestPathDepth int
	// f orders the priority queue: an upper bound on any score obtainable
	// below this node (viable) or the score to report (accepted).
	f   int
	tag tag
	seq int64 // insertion counter for deterministic tie-breaking
}

// Search runs the OASIS algorithm for query over the index and calls report
// once per qualifying database sequence, in decreasing order of alignment
// score (the paper's online property).  The search stops when report returns
// false, when MaxResults sequences have been reported, or when the priority
// queue is exhausted.
func Search(idx Index, query []byte, opts Options, report func(Hit) bool) error {
	s, err := newSearcher(idx, query, opts)
	if err != nil {
		return err
	}
	defer s.release()
	return s.runFromRoot(report)
}

// SearchStream is Search with a frontier hook: frontier is invoked with the
// f-value of every node popped from the priority queue.  Because the queue is
// a max-heap over f and f bounds every score obtainable at or below a node,
// each callback value is a (non-increasing) upper bound on the score of any
// hit the search can still report — including hits reported by the node just
// popped.  Returning false from frontier cancels the search (like returning
// false from report).
//
// The hook is what makes score-ordered merging of concurrent searches
// possible (see internal/shard): a merger may release a buffered hit as soon
// as its score is >= every other stream's latest frontier bound.
func SearchStream(idx Index, query []byte, opts Options, report func(Hit) bool, frontier func(bound int) bool) error {
	s, err := newSearcher(idx, query, opts)
	if err != nil {
		return err
	}
	defer s.release()
	s.frontier = frontier
	return s.runFromRoot(report)
}

// SearchAll runs Search and collects every hit.
func SearchAll(idx Index, query []byte, opts Options) ([]Hit, error) {
	var hits []Hit
	err := Search(idx, query, opts, func(h Hit) bool {
		hits = append(hits, h)
		return true
	})
	return hits, err
}

// searcher holds the state of one OASIS search.  Its buffers live in a
// Scratch (either caller-supplied via Options.Scratch or private to this
// search) so warm engines can reuse them across queries; release copies the
// mutable slice headers back when the search finishes.
type searcher struct {
	idx      Index
	cat      Catalog
	query    []byte
	opts     Options
	sc       *Scratch
	h        []int // heuristic vector, length m+1
	pq       nodeHeap
	reported []bool
	nHits    int
	seqGen   int64
	stats    *Stats
	// frontier, when non-nil, receives the f-value of every popped node
	// (see SearchStream).
	frontier func(bound int) bool
	// ctx/pollEvery/pollCountdown implement Options.Context: the countdown
	// decrements once per DP column across expansions, and each time it hits
	// zero the context is polled (ctx is nil when polling is disabled).
	ctx           context.Context
	pollEvery     int
	pollCountdown int
	// prevBuf/curBuf are scratch columns reused across expansions to avoid
	// a pair of allocations per visited child.
	prevBuf []int
	curBuf  []int
	// freeBands recycles the band slices of popped viable nodes, bucketed by
	// power-of-two capacity class so a recycled slice always fits requests of
	// its class (see allocBand).
	freeBands [][][]int
	// freeNodes recycles searchNode structs of popped nodes.
	freeNodes []*searchNode
	// prof is the query profile: prof[(i-1)*profWidth + sym] is the
	// substitution score of query position i against symbol sym, hoisting
	// the matrix lookup out of the inner loop.
	prof      []int
	profWidth int
}

func newSearcher(idx Index, query []byte, opts Options) (*searcher, error) {
	if idx == nil {
		return nil, fmt.Errorf("core: nil index")
	}
	if len(query) == 0 {
		return nil, fmt.Errorf("core: empty query")
	}
	if err := opts.Scheme.Validate(); err != nil {
		return nil, err
	}
	if opts.MinScore < 1 {
		return nil, fmt.Errorf("core: MinScore must be >= 1, got %d", opts.MinScore)
	}
	cat := idx.Catalog()
	if !cat.Alphabet().ValidCodes(query) {
		return nil, fmt.Errorf("core: query contains symbols outside the %q alphabet", cat.Alphabet().Name())
	}
	if opts.Scheme.Matrix.Alphabet() != cat.Alphabet() {
		return nil, fmt.Errorf("core: matrix %q is over a different alphabet than the index", opts.Scheme.Matrix.Name())
	}
	st := opts.Stats
	if st == nil {
		st = &Stats{}
	}
	mat := opts.Scheme.Matrix
	sc := opts.Scratch
	if sc == nil {
		sc = NewScratch()
	}
	sc.acquire(cat.NumSequences(), len(query), mat, query)
	s := &searcher{
		idx:       idx,
		cat:       cat,
		query:     query,
		opts:      opts,
		sc:        sc,
		h:         sc.h,
		reported:  sc.reported[:cat.NumSequences()],
		stats:     st,
		prevBuf:   sc.prevBuf,
		curBuf:    sc.curBuf,
		freeBands: sc.freeBands,
		freeNodes: sc.freeNodes,
		prof:      sc.prof,
		profWidth: mat.Size(),
	}
	if opts.Context != nil && opts.CancelPollColumns >= 0 {
		s.ctx = opts.Context
		s.pollEvery = opts.CancelPollColumns
		if s.pollEvery == 0 {
			s.pollEvery = DefaultCancelPollColumns
		}
		s.pollCountdown = s.pollEvery
	}
	s.pq.items = sc.heapItems[:0]
	return s, nil
}

// release hands the searcher's (possibly reallocated) buffers back to the
// scratch so the next search over it starts warm.  Safe to call exactly once,
// on every exit path of Search/SearchStream.
func (s *searcher) release() {
	sc := s.sc
	sc.prevBuf = s.prevBuf
	sc.curBuf = s.curBuf
	sc.freeBands = s.freeBands
	sc.freeNodes = s.freeNodes
	sc.heapItems = s.pq.items[:0]
}

// bandClass buckets a band width into its power-of-two size class, so the
// free lists hand out slices whose capacity (1 << class) always covers the
// request while over-allocating by less than 2x.
func bandClass(width int) int {
	return bits.Len(uint(width - 1))
}

// allocBand returns a band buffer of the given width (in cells), reusing a
// recycled slice of the same size class when available.  Band buffers are
// arena-style: capacity is the class's power of two, length the live width.
func (s *searcher) allocBand(width int) []int {
	if width > s.stats.MaxBandWidth {
		s.stats.MaxBandWidth = width
	}
	class := bandClass(width)
	for len(s.freeBands) <= class {
		s.freeBands = append(s.freeBands, nil)
	}
	if n := len(s.freeBands[class]); n > 0 {
		b := s.freeBands[class][n-1]
		s.freeBands[class][n-1] = nil
		s.freeBands[class] = s.freeBands[class][:n-1]
		return b[:width]
	}
	return make([]int, width, 1<<class)
}

// recycleBand returns a node's band buffer to its size-class free list.
func (s *searcher) recycleBand(b []int) {
	if b == nil {
		return
	}
	class := bandClass(cap(b))
	if cap(b) != 1<<class {
		// Not an arena slice (should not happen); drop it.
		return
	}
	for len(s.freeBands) <= class {
		s.freeBands = append(s.freeBands, nil)
	}
	if len(s.freeBands[class]) < 256 {
		s.freeBands[class] = append(s.freeBands[class], b)
	}
}

// allocNode returns a zeroed searchNode, reusing a recycled one when
// available.
func (s *searcher) allocNode() *searchNode {
	if n := len(s.freeNodes); n > 0 {
		nd := s.freeNodes[n-1]
		s.freeNodes = s.freeNodes[:n-1]
		*nd = searchNode{}
		return nd
	}
	return &searchNode{}
}

// recycleNode returns a popped, fully processed node to the free list.
func (s *searcher) recycleNode(n *searchNode) {
	s.recycleBand(n.band)
	n.band = nil
	if len(s.freeNodes) < 1024 {
		s.freeNodes = append(s.freeNodes, n)
	}
}

// HeuristicVector computes the paper's admissible heuristic: H[i] is an
// upper bound on the score of aligning the query remainder Q[i+1..m] against
// any target (the suffix sum of each remaining symbol's best possible
// substitution score, never below zero per symbol).
func HeuristicVector(query []byte, m *score.Matrix) []int {
	return HeuristicVectorInto(nil, query, m)
}

// HeuristicVectorInto is HeuristicVector writing into buf (grown as needed),
// so warm engines can reuse the allocation across queries.
func HeuristicVectorInto(buf []int, query []byte, m *score.Matrix) []int {
	if cap(buf) < len(query)+1 {
		buf = make([]int, len(query)+1)
	}
	h := buf[:len(query)+1]
	h[len(query)] = 0
	for i := len(query) - 1; i >= 0; i-- {
		best := m.RowMax(query[i])
		if best < 0 {
			best = 0
		}
		h[i] = h[i+1] + best
	}
	return h
}

// runFromRoot seeds the queue with the root node and runs the best-first
// loop (the whole-index search; subtree-sharded searches seed the queue from
// a Frontier instead, see SearchSeedsStream).
func (s *searcher) runFromRoot(report func(Hit) bool) error {
	if root := s.rootNode(); root != nil {
		s.push(root)
	}
	return s.run(report)
}

// run executes the main best-first loop (paper Algorithm 1) over whatever
// nodes have been pushed.
func (s *searcher) run(report func(Hit) bool) error {
	for s.pq.Len() > 0 {
		n := s.pop()
		if s.frontier != nil && !s.frontier(n.f) {
			s.recycleNode(n)
			return nil
		}
		if n.tag == tagAccepted {
			done, err := s.reportSubtree(n, report)
			if err != nil {
				return err
			}
			if done {
				return nil
			}
			s.recycleNode(n)
			continue
		}
		// Viable: expand every child of the corresponding suffix-tree node.
		s.stats.NodesExpanded++
		err := s.idx.VisitChildren(n.ref, n.depth, func(child NodeRef, label EdgeLabel) error {
			cn, err := s.expand(n, child, label)
			if err != nil {
				return err
			}
			if cn != nil {
				s.push(cn)
			}
			return nil
		})
		if err != nil {
			return err
		}
		// The popped node (and its column vector) is no longer needed.
		s.recycleNode(n)
	}
	return nil
}

// rootNode builds the initial search node (paper Algorithm 2): the score
// vector is zero (alignments may skip any query prefix for free), pruned
// where even the full heuristic cannot reach minScore.  Because the
// heuristic is non-increasing in i, the live cells form the prefix [0, hi].
func (s *searcher) rootNode() *searchNode {
	m := len(s.query)
	hi := -1
	f := negInf
	for i := 0; i <= m; i++ {
		if s.h[i] >= s.opts.MinScore {
			hi = i
			if s.h[i] > f {
				f = s.h[i]
			}
		}
	}
	if hi < 0 {
		// Even a perfect match of the whole query cannot reach minScore.
		return nil
	}
	lo := 0
	if s.opts.DisableLiveBand {
		hi = m
	}
	band := s.allocBand(hi - lo + 1)
	for i := lo; i <= hi; i++ {
		if s.h[i] >= s.opts.MinScore {
			band[i-lo] = 0
		} else {
			band[i-lo] = negInf // full-sweep mode stores the pruned tail too
		}
	}
	return &searchNode{
		ref:      s.idx.Root(),
		depth:    0,
		band:     band,
		cLo:      lo,
		cHi:      hi,
		maxScore: 0,
		f:        f,
		tag:      tagViable,
	}
}

// expand fills in the dynamic-programming columns for the symbols on the
// edge leading to child (paper Algorithm 3) and returns the resulting search
// node, or nil when the node is unviable.
//
// The edge label is consumed lazily (chunk by chunk) so that long leaf edges
// are only read as far as the column sweep actually progresses before the
// node is accepted or discarded.
//
// The column sweep is banded: pruning leaves each column with a contiguous
// live interval [lo, hi] of non-negInf cells (cells outside it are never
// revived by later columns except through the insertion chain immediately
// above hi), so only cells reachable from the previous column's band are
// computed.  Cells outside a column's band are never written and may hold
// stale values from buffer reuse — every read below is therefore guarded by
// the band bounds.  Options.DisableLiveBand widens the band to the full
// column, restoring the original exhaustive sweep.
func (s *searcher) expand(parent *searchNode, child NodeRef, label EdgeLabel) (*searchNode, error) {
	m := len(s.query)
	mat := s.opts.Scheme.Matrix
	gap := s.opts.Scheme.Gap
	minScore := s.opts.MinScore
	h := s.h
	full := s.opts.DisableLiveBand

	// prev/cur are searcher-owned scratch buffers (reused across every
	// expansion); prev starts as a copy of the parent's live band so the
	// parent's vector stays intact for its other children.  The locals swap
	// roles once per column; every return path below re-synchronises the
	// searcher fields with the locals so buffer ownership stays explicit.
	prev := s.prevBuf
	cur := s.curBuf
	plo, phi := parent.cLo, parent.cHi
	copy(prev[plo:phi+1], parent.band)
	maxScore := parent.maxScore
	bestQEnd := parent.bestQueryEnd
	bestDepth := parent.bestPathDepth

	hColumn := negInf
	columns := 0
	var cells int64
	terminator := false
	labelLen := label.Len()
	var chunk []byte
	chunkStart, chunkEnd := 0, 0
	for j := 0; j < labelLen; j++ {
		// Cancellation poll (Options.Context): one countdown per column,
		// carried across expansions on the searcher, so a query stuck in a
		// long hit-less DP stretch still observes ctx within pollEvery
		// columns instead of only at the next hit callback.
		if s.ctx != nil {
			s.pollCountdown--
			if s.pollCountdown <= 0 {
				s.pollCountdown = s.pollEvery
				if err := s.ctx.Err(); err != nil {
					s.recordColumns(columns, cells)
					s.prevBuf, s.curBuf = prev, cur
					return nil, err
				}
			}
		}
		if j >= chunkEnd {
			to := j + 64
			if to > labelLen {
				to = labelLen
			}
			var err error
			chunk, err = label.Symbols(j, to)
			if err != nil {
				s.prevBuf, s.curBuf = prev, cur
				return nil, err
			}
			chunkStart, chunkEnd = j, to
		}
		sym := chunk[j-chunkStart]
		if int(sym) >= mat.Size() {
			// Sequence terminator: alignments never extend across it; the
			// remaining label (if any) is beyond this sequence.
			terminator = true
			break
		}
		pathDepth := parent.depth + j + 1
		colBest := negInf
		curLo, curHi := m+1, -1
		// upCell tracks cur[i-1] through the sweep so the insertion move
		// never reads an unwritten cell.
		upCell := negInf
		// Row 0 (the empty query prefix) is never computed: its only source
		// is a deletion from the previous column's row 0 (a zero reset would
		// duplicate work done on other suffixes), so its value starts at 0 in
		// the root column and can only decrease by the (negative) gap — the
		// v <= 0 pruning rule therefore kills it in every expanded column.
		// The full-sweep mode still stores the pruned cell so the whole
		// column stays defined for the next sweep.
		if full {
			cur[0] = negInf
		}
		profRow := s.prof[:]
		symInt := int(sym)
		start := plo
		if start < 1 {
			start = 1
		}
		for i := start; i <= m; i++ {
			v := negInf
			if i-1 >= plo && i-1 <= phi {
				v = addScore(prev[i-1], profRow[(i-1)*s.profWidth+symInt]) // substitution
			}
			if up := addScore(upCell, gap); up > v { // insertion: consume a query symbol
				v = up
			}
			if i <= phi { // i >= plo always holds here
				if left := addScore(prev[i], gap); left > v { // deletion: consume a target symbol
					v = left
				}
			}
			// Alignment pruning (paper Section 3.2, cases 1-3).
			if v <= 0 || v+h[i] <= maxScore || v+h[i] < minScore {
				v = negInf
			}
			cur[i] = v
			cells++
			upCell = v
			if v != negInf {
				if curLo > m {
					curLo = i
				}
				curHi = i
				if v > maxScore {
					maxScore = v
					bestQEnd = i
					bestDepth = pathDepth
				}
				if v+h[i] > colBest {
					colBest = v + h[i]
				}
			} else if i > phi && !full {
				// Past the previous column's band only the insertion chain
				// can stay alive; once it dies the rest of the column is
				// negInf and need not be touched.
				break
			}
		}
		columns++
		hColumn = colBest
		if maxScore >= hColumn {
			// Nothing below this node can beat the alignment already found
			// along this path.
			s.recordColumns(columns, cells)
			s.prevBuf, s.curBuf = prev, cur
			if maxScore >= minScore {
				s.stats.NodesAccepted++
				node := s.allocNode()
				node.ref = child
				node.depth = parent.depth + j + 1
				node.maxScore = maxScore
				node.bestQueryEnd = bestQEnd
				node.bestPathDepth = bestDepth
				node.f = maxScore
				node.tag = tagAccepted
				return node, nil
			}
			s.stats.NodesUnviable++
			return nil, nil
		}
		if hColumn < minScore {
			s.recordColumns(columns, cells)
			s.prevBuf, s.curBuf = prev, cur
			s.stats.NodesUnviable++
			return nil, nil
		}
		prev, cur = cur, prev
		plo, phi = curLo, curHi
		if full {
			plo, phi = 0, m
		}
	}
	s.recordColumns(columns, cells)
	// Keep the searcher's scratch pointers consistent with the swaps.
	s.prevBuf, s.curBuf = prev, cur

	// The whole edge label has been consumed (or a terminator reached).
	node := s.allocNode()
	node.ref = child
	node.depth = parent.depth + columns
	node.maxScore = maxScore
	node.bestQueryEnd = bestQEnd
	node.bestPathDepth = bestDepth
	if child.IsLeaf() || terminator {
		// No further expansion is possible below a leaf.
		if maxScore >= minScore {
			node.tag = tagAccepted
			node.f = maxScore
			s.stats.NodesAccepted++
			return node, nil
		}
		s.stats.NodesUnviable++
		s.recycleNode(node)
		return nil, nil
	}
	if columns == 0 {
		// Degenerate empty edge (cannot happen in a well-formed index).
		s.stats.NodesUnviable++
		s.recycleNode(node)
		return nil, nil
	}
	node.tag = tagViable
	node.f = hColumn
	node.cLo, node.cHi = plo, phi
	node.band = s.allocBand(phi - plo + 1)
	copy(node.band, prev[plo:phi+1]) // prev holds the last computed column after the swap
	return node, nil
}

// addScore adds a matrix/gap score to a cell value, keeping negInf absorbing.
func addScore(v, delta int) int {
	if v <= negInf {
		return negInf
	}
	return v + delta
}

func (s *searcher) recordColumns(columns int, cells int64) {
	s.stats.ColumnsExpanded += int64(columns)
	s.stats.CellsComputed += cells
}

// reportSubtree reports every not-yet-reported sequence that contains a leaf
// below the accepted node.  It returns true when the search is finished
// (callback cancelled, MaxResults reached, or every sequence reported).
func (s *searcher) reportSubtree(n *searchNode, report func(Hit) bool) (bool, error) {
	done := false
	var walkErr error
	err := s.idx.LeafPositions(n.ref, func(pos int64) bool {
		seqIdx, local, err := s.cat.Locate(pos)
		if err != nil {
			walkErr = err
			return false
		}
		if s.reported[seqIdx] {
			return true
		}
		s.reported[seqIdx] = true
		s.sc.touched = append(s.sc.touched, seqIdx)
		s.nHits++
		s.stats.SequencesReported++
		hit := Hit{
			SeqIndex:  seqIdx,
			SeqID:     s.cat.SequenceID(seqIdx),
			Score:     n.maxScore,
			QueryEnd:  n.bestQueryEnd,
			TargetEnd: int(local) + n.bestPathDepth,
			Rank:      s.nHits,
		}
		if hit.TargetEnd > s.cat.SequenceLength(seqIdx) {
			hit.TargetEnd = s.cat.SequenceLength(seqIdx)
		}
		if s.opts.KA != nil {
			hit.EValue = s.opts.KA.EValue(hit.Score, len(s.query), s.cat.TotalResidues())
		}
		if !report(hit) {
			done = true
			return false
		}
		if s.opts.MaxResults > 0 && s.nHits >= s.opts.MaxResults {
			done = true
			return false
		}
		if s.nHits >= s.cat.NumSequences() {
			done = true
			return false
		}
		return true
	})
	if walkErr != nil {
		return false, walkErr
	}
	return done, err
}

func (s *searcher) push(n *searchNode) {
	n.seq = s.seqGen
	s.seqGen++
	s.pq.push(n)
	s.stats.NodesPushed++
	if s.pq.Len() > s.stats.MaxQueueSize {
		s.stats.MaxQueueSize = s.pq.Len()
	}
}

func (s *searcher) pop() *searchNode { return s.pq.pop() }

// nodeHeap is a max-heap over searchNodes ordered by f (ties: accepted nodes
// before viable ones, then insertion order for determinism).
type nodeHeap struct {
	items []*searchNode
}

func nodeLess(a, b *searchNode) bool {
	if a.f != b.f {
		return a.f > b.f
	}
	if a.tag != b.tag {
		return a.tag == tagAccepted
	}
	return a.seq < b.seq
}

func (h *nodeHeap) Len() int { return len(h.items) }

func (h *nodeHeap) push(n *searchNode) {
	h.items = append(h.items, n)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if nodeLess(h.items[i], h.items[parent]) {
			h.items[i], h.items[parent] = h.items[parent], h.items[i]
			i = parent
			continue
		}
		break
	}
}

func (h *nodeHeap) pop() *searchNode {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = nil
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h.items) && nodeLess(h.items[l], h.items[best]) {
			best = l
		}
		if r < len(h.items) && nodeLess(h.items[r], h.items[best]) {
			best = r
		}
		if best == i {
			break
		}
		h.items[i], h.items[best] = h.items[best], h.items[i]
		i = best
	}
	return top
}

// SortHits orders hits by decreasing score then by sequence index; used when
// comparing result sets from different algorithms.
func SortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].SeqIndex < hits[j].SeqIndex
	})
}
