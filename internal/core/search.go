package core

import (
	"context"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/score"
)

// negInf is the pruned-score sentinel (alias of score.NegInf).
const negInf = score.NegInf

// maxKernelScore caps the heuristic prefix sum h[0] (the largest score any
// search over the query could produce).  Cell values and priority bounds are
// kept in int32 (see store.go); the cap leaves headroom so no sum the
// kernels form — including sentinel arithmetic around negInf — can leave the
// int32 domain.  It allows queries up to hundreds of millions of residues of
// best-case score before refusing.
const maxKernelScore = 1 << 28

// Options configures an OASIS search.
type Options struct {
	// Scheme is the substitution matrix and (linear) gap penalty.
	Scheme score.Scheme
	// MinScore is the minimum alignment score for a sequence to be
	// reported (paper parameter minScore; derived from an E-value via
	// score.KarlinAltschul.MinScore).  Must be >= 1.
	MinScore int
	// MaxResults stops the search after this many sequences have been
	// reported (0 = report every qualifying sequence).  Because results
	// arrive in decreasing score order this yields the top-k sequences.
	MaxResults int
	// KA, when non-nil, attaches E-values to reported hits.
	KA *score.KarlinAltschul
	// Stats, when non-nil, accumulates work counters.
	Stats *Stats
	// DisableLiveBand turns off the live-band DP kernel and sweeps every
	// cell of every column (rows 1..m; row 0 is provably dead below the
	// root and is never computed in either mode), as the original
	// implementation did.  The search result is identical either way; the
	// flag exists so tests and benchmarks can quantify the band's
	// CellsComputed reduction.
	DisableLiveBand bool
	// ReferenceKernel selects the original scalar column sweep (per-cell
	// band-bound guards, sentinel-guarded adds, branchy bookkeeping) instead
	// of the branch-free structure-of-arrays kernel.  Results and work
	// counters are identical either way (FuzzKernelEquivalence); the flag
	// exists for differential testing and for ablating the kernel rewrite.
	ReferenceKernel bool
	// Scratch, when non-nil, supplies reusable search buffers so warm
	// engines avoid per-query allocation.  A Scratch must serve at most one
	// search at a time; results are identical with or without it.
	Scratch *Scratch
	// Context, when non-nil, cancels an in-flight search from inside the DP
	// sweep: the searcher polls Context.Err() every CancelPollColumns
	// columns, so even a long hit-less stretch (where no report callback
	// runs that a caller could cancel from) observes cancellation promptly.
	// A cancelled search returns the context's error.
	Context context.Context
	// CancelPollColumns is how many DP columns may be swept between
	// cancellation polls (0 selects DefaultCancelPollColumns; negative
	// disables polling).  Smaller values cancel faster but poll more.
	CancelPollColumns int
	// StrictShards makes a sharded search fail outright when any shard
	// fails, instead of quarantining the shard and completing a degraded
	// stream from the survivors (see Stats.Degraded).  Single-index searches
	// ignore it.
	StrictShards bool
}

// DefaultCancelPollColumns is the default cancellation poll interval: one
// Context.Err() call per this many DP columns keeps poll overhead well under
// the column sweep cost while bounding the work done after cancellation.
const DefaultCancelPollColumns = 256

// Hit is one reported sequence: the strongest local alignment between the
// query and that sequence (OASIS duplicates S-W's one-hit-per-sequence
// reporting, paper Section 3).
type Hit struct {
	// SeqIndex and SeqID identify the database sequence.
	SeqIndex int
	SeqID    string
	// Score is the optimal local-alignment score for this sequence.
	Score int
	// EValue is the expectation value when Options.KA was provided.
	EValue float64
	// QueryEnd is the 1-based query position at which the reported
	// alignment ends.
	QueryEnd int
	// TargetEnd is the 0-based exclusive end offset of the alignment
	// within the target sequence.
	TargetEnd int
	// Rank is the position of this hit in the result stream (1 = first
	// and therefore highest-scoring).
	Rank int
}

// Stats accumulates the work counters used by the paper's filtering
// comparison (Figure 4) and by the ablation benchmarks.
type Stats struct {
	// ColumnsExpanded counts dynamic-programming columns filled in (the
	// paper's filtering metric).
	ColumnsExpanded int64
	// CellsComputed counts individual matrix cells evaluated.
	CellsComputed int64
	// NodesExpanded counts suffix-tree nodes whose children were expanded.
	NodesExpanded int64
	// NodesPushed counts search nodes pushed onto the priority queue.
	NodesPushed int64
	// NodesAccepted counts nodes tagged ACCEPTED.
	NodesAccepted int64
	// NodesUnviable counts nodes discarded as UNVIABLE.
	NodesUnviable int64
	// MaxQueueSize is the high-water mark of the priority queue.
	MaxQueueSize int
	// MaxBandWidth is the widest live band stored on any viable search node
	// (cells, not query length).  Column storage is band-sized, so this also
	// bounds the per-node memory the search ever requested.
	MaxBandWidth int
	// SequencesReported counts reported hits.
	SequencesReported int64
	// Degraded marks a sharded search that lost one or more shards and
	// completed from the survivors: the hit stream is still in decreasing
	// score order but covers only the surviving shards' sequences.
	// ShardErrors carries the per-shard detail.  Options.StrictShards turns
	// degradation into a search error instead.
	Degraded    bool         `json:"degraded,omitempty"`
	ShardErrors []ShardError `json:"shard_errors,omitempty"`
}

// ShardError describes one quarantined shard of a degraded search.
type ShardError struct {
	// Shard is the failed shard's index.
	Shard int `json:"shard"`
	// Err is the failure description.
	Err string `json:"error"`
}

// Add merges other into s.
func (s *Stats) Add(other Stats) {
	s.ColumnsExpanded += other.ColumnsExpanded
	s.CellsComputed += other.CellsComputed
	s.NodesExpanded += other.NodesExpanded
	s.NodesPushed += other.NodesPushed
	s.NodesAccepted += other.NodesAccepted
	s.NodesUnviable += other.NodesUnviable
	s.SequencesReported += other.SequencesReported
	if other.MaxQueueSize > s.MaxQueueSize {
		s.MaxQueueSize = other.MaxQueueSize
	}
	if other.MaxBandWidth > s.MaxBandWidth {
		s.MaxBandWidth = other.MaxBandWidth
	}
	if other.Degraded {
		s.Degraded = true
	}
	s.ShardErrors = append(s.ShardErrors, other.ShardErrors...)
}

// Search runs the OASIS algorithm for query over the index and calls report
// once per qualifying database sequence, in decreasing order of alignment
// score (the paper's online property).  The search stops when report returns
// false, when MaxResults sequences have been reported, or when the priority
// queue is exhausted.
func Search(idx Index, query []byte, opts Options, report func(Hit) bool) error {
	s, err := newSearcher(idx, query, opts)
	if err != nil {
		return err
	}
	defer s.release()
	return s.runFromRoot(report)
}

// SearchStream is Search with a frontier hook: frontier is invoked with the
// f-value of every node popped from the priority queue.  Because the queue is
// a max-heap over f and f bounds every score obtainable at or below a node,
// each callback value is a (non-increasing) upper bound on the score of any
// hit the search can still report — including hits reported by the node just
// popped.  Returning false from frontier cancels the search (like returning
// false from report).
//
// The hook is what makes score-ordered merging of concurrent searches
// possible (see internal/shard): a merger may release a buffered hit as soon
// as its score is >= every other stream's latest frontier bound.
func SearchStream(idx Index, query []byte, opts Options, report func(Hit) bool, frontier func(bound int) bool) error {
	s, err := newSearcher(idx, query, opts)
	if err != nil {
		return err
	}
	defer s.release()
	s.frontier = frontier
	return s.runFromRoot(report)
}

// SearchAll runs Search and collects every hit.
func SearchAll(idx Index, query []byte, opts Options) ([]Hit, error) {
	var hits []Hit
	err := Search(idx, query, opts, func(h Hit) bool {
		hits = append(hits, h)
		return true
	})
	return hits, err
}

// searcher holds the state of one OASIS search.  Its buffers live in a
// Scratch (either caller-supplied via Options.Scratch or private to this
// search) so warm engines can reuse them across queries; release copies the
// mutable slice headers back when the search finishes.
type searcher struct {
	idx   Index
	cat   Catalog
	query []byte
	opts  Options
	sc    *Scratch
	h     []int   // heuristic vector, length m+1
	h32   []int32 // the kernels' int32 copy of h
	// The priority queue: bq (O(1) bucket queue over the small f domain
	// [MinScore, h[0]]) whenever that domain fits maxBucketRange, pq (4-ary
	// heap) as the fallback for pathologically wide domains.  Both implement
	// the same total order, so the choice never changes results.
	useBuckets bool
	bq         *bucketQueue
	pq         nodeHeap
	nodes      *nodeStore // viable-node structure-of-arrays (lives in sc)
	acc        *accStore  // accepted-node bookkeeping, packed separately
	reported   []bool
	nHits      int
	seqGen     uint32
	stats      *Stats
	// frontier, when non-nil, receives the f-value of every popped node
	// (see SearchStream).
	frontier func(bound int) bool
	// claim, when non-nil, pulls additional frontier seeds into the queue on
	// demand (SearchSeedsDynamic): before every pop it is offered the
	// current queue-top f and may hand back one more seed to push, until it
	// returns nil.
	claim func(topF int) *Seed
	// ctx/pollEvery/pollCountdown implement Options.Context: the countdown
	// decrements once per DP column across expansions, and each time it hits
	// zero the context is polled (ctx is nil when polling is disabled).
	ctx           context.Context
	pollEvery     int
	pollCountdown int
	// prevBuf/curBuf are scratch columns (m+2 cells: one sentinel above the
	// band, see kernel.go) reused across expansions.
	prevBuf []int32
	curBuf  []int32
	// freeBands recycles the band slices of popped viable nodes, bucketed by
	// power-of-two capacity class so a recycled slice always fits requests of
	// its class (see allocBand).
	freeBands [][][]int32
	// prof is the query profile in row-major order (prof[(i-1)*profWidth +
	// sym]), used by the reference kernel; profT is the transposed profile
	// (profT[sym*m + (i-1)]), whose per-symbol rows are contiguous for the
	// fast kernel's column sweeps.
	prof      []int32
	profT     []int32
	profWidth int
	refKernel bool
	full      bool
}

func newSearcher(idx Index, query []byte, opts Options) (*searcher, error) {
	if idx == nil {
		return nil, fmt.Errorf("core: nil index")
	}
	if len(query) == 0 {
		return nil, fmt.Errorf("core: empty query")
	}
	if err := opts.Scheme.Validate(); err != nil {
		return nil, err
	}
	if opts.MinScore < 1 {
		return nil, fmt.Errorf("core: MinScore must be >= 1, got %d", opts.MinScore)
	}
	cat := idx.Catalog()
	if !cat.Alphabet().ValidCodes(query) {
		return nil, fmt.Errorf("core: query contains symbols outside the %q alphabet", cat.Alphabet().Name())
	}
	if opts.Scheme.Matrix.Alphabet() != cat.Alphabet() {
		return nil, fmt.Errorf("core: matrix %q is over a different alphabet than the index", opts.Scheme.Matrix.Name())
	}
	st := opts.Stats
	if st == nil {
		st = &Stats{}
	}
	mat := opts.Scheme.Matrix
	sc := opts.Scratch
	if sc == nil {
		sc = NewScratch()
	}
	sc.acquire(cat.NumSequences(), len(query), mat, query)
	if len(sc.h) > 0 && sc.h[0] > maxKernelScore {
		return nil, fmt.Errorf("core: query heuristic bound %d exceeds the kernel's score capacity %d", sc.h[0], maxKernelScore)
	}
	s := &searcher{
		idx:       idx,
		cat:       cat,
		query:     query,
		opts:      opts,
		sc:        sc,
		h:         sc.h,
		h32:       sc.h32,
		nodes:     &sc.nodes,
		acc:       &sc.acc,
		reported:  sc.reported[:cat.NumSequences()],
		stats:     st,
		prevBuf:   sc.prevBuf,
		curBuf:    sc.curBuf,
		freeBands: sc.freeBands,
		prof:      sc.prof,
		profT:     sc.profT,
		profWidth: mat.Size(),
		refKernel: opts.ReferenceKernel,
		full:      opts.DisableLiveBand,
	}
	if opts.Context != nil && opts.CancelPollColumns >= 0 {
		s.ctx = opts.Context
		s.pollEvery = opts.CancelPollColumns
		if s.pollEvery == 0 {
			s.pollEvery = DefaultCancelPollColumns
		}
		s.pollCountdown = s.pollEvery
	}
	if len(sc.h) > 0 && sc.h[0] >= opts.MinScore && sc.h[0]-opts.MinScore+1 <= maxBucketRange {
		s.useBuckets = true
		s.bq = &sc.bq
		s.bq.init(opts.MinScore, sc.h[0])
	}
	s.pq.items = sc.heapItems[:0]
	return s, nil
}

// queueTopF returns the highest queued f, or negInf when the queue is empty.
//
//oasis:hotpath
func (s *searcher) queueTopF() int {
	if s.useBuckets {
		return s.bq.topF()
	}
	if len(s.pq.items) == 0 {
		return negInf
	}
	return s.pq.items[0].f()
}

// queuePop removes and returns the highest-priority entry, if any.
//
//oasis:hotpath
func (s *searcher) queuePop() (heapEnt, bool) {
	if s.useBuckets {
		if s.bq.size == 0 {
			return heapEnt{}, false
		}
		id, f, accepted := s.bq.pop()
		return heapEnt{key: heapKey(f, accepted), id: id}, true
	}
	if len(s.pq.items) == 0 {
		return heapEnt{}, false
	}
	return s.pq.pop(), true
}

// release hands the searcher's (possibly reallocated) buffers back to the
// scratch so the next search over it starts warm.  Safe to call exactly once,
// on every exit path of Search/SearchStream.
func (s *searcher) release() {
	sc := s.sc
	sc.prevBuf = s.prevBuf
	sc.curBuf = s.curBuf
	sc.freeBands = s.freeBands
	sc.heapItems = s.pq.items[:0]
	sc.nodes.reset()
	sc.acc.reset()
}

// bandClass buckets a band width into its power-of-two size class, so the
// free lists hand out slices whose capacity (1 << class) always covers the
// request while over-allocating by less than 2x.
func bandClass(width int) int {
	return bits.Len(uint(width - 1))
}

// allocBand returns a band buffer of the given width (in cells), reusing a
// recycled slice of the same size class when available.  Band buffers are
// arena-style: capacity is the class's power of two, length the live width.
//
//oasis:hotpath
func (s *searcher) allocBand(width int) []int32 {
	if width > s.stats.MaxBandWidth {
		s.stats.MaxBandWidth = width
	}
	class := bandClass(width)
	for len(s.freeBands) <= class {
		s.freeBands = append(s.freeBands, nil) //oasis:allow-alloc free-list table growth, bounded by log2(max band width)
	}
	if n := len(s.freeBands[class]); n > 0 {
		b := s.freeBands[class][n-1]
		s.freeBands[class][n-1] = nil
		s.freeBands[class] = s.freeBands[class][:n-1]
		return b[:width]
	}
	return make([]int32, width, 1<<class) //oasis:allow-alloc cold path: free list empty, arena warms up once per size class
}

// recycleBand returns a node's band buffer to its size-class free list.
//
//oasis:hotpath
func (s *searcher) recycleBand(b []int32) {
	if b == nil {
		return
	}
	class := bandClass(cap(b))
	if cap(b) != 1<<class {
		// Not an arena slice (should not happen); drop it.
		return
	}
	for len(s.freeBands) <= class {
		s.freeBands = append(s.freeBands, nil) //oasis:allow-alloc free-list table growth, bounded by log2(max band width)
	}
	if len(s.freeBands[class]) < 256 {
		s.freeBands[class] = append(s.freeBands[class], b) //oasis:allow-alloc amortized free-list growth, capped at 256 entries
	}
}

// releaseViable recycles a fully processed viable node: its band goes back to
// the size-class free lists and its id to the store.
//
//oasis:hotpath
func (s *searcher) releaseViable(id int32) {
	ns := s.nodes
	s.recycleBand(ns.band[id])
	ns.band[id] = nil
	ns.free = append(ns.free, id) //oasis:allow-alloc amortized free-list growth
}

// recycleEnt recycles whichever store a popped entry references.
//
//oasis:hotpath
func (s *searcher) recycleEnt(e heapEnt) {
	if e.accepted() {
		s.acc.release(e.id)
	} else {
		s.releaseViable(e.id)
	}
}

// HeuristicVector computes the paper's admissible heuristic: H[i] is an
// upper bound on the score of aligning the query remainder Q[i+1..m] against
// any target (the suffix sum of each remaining symbol's best possible
// substitution score, never below zero per symbol).
func HeuristicVector(query []byte, m *score.Matrix) []int {
	return HeuristicVectorInto(nil, query, m)
}

// HeuristicVectorInto is HeuristicVector writing into buf (grown as needed),
// so warm engines can reuse the allocation across queries.
func HeuristicVectorInto(buf []int, query []byte, m *score.Matrix) []int {
	if cap(buf) < len(query)+1 {
		buf = make([]int, len(query)+1)
	}
	h := buf[:len(query)+1]
	h[len(query)] = 0
	for i := len(query) - 1; i >= 0; i-- {
		best := m.RowMax(query[i])
		if best < 0 {
			best = 0
		}
		h[i] = h[i+1] + best
	}
	return h
}

// runFromRoot seeds the queue with the root node and runs the best-first
// loop (the whole-index search; subtree-sharded searches seed the queue from
// a Frontier instead, see SearchSeedsStream).
func (s *searcher) runFromRoot(report func(Hit) bool) error {
	if id, f, ok := s.rootNode(); ok {
		s.push(f, false, id)
	}
	return s.run(report)
}

// run executes the main best-first loop (paper Algorithm 1) over whatever
// nodes have been pushed (plus whatever the claim hook hands out).
func (s *searcher) run(report func(Hit) bool) error {
	for {
		if s.claim != nil {
			topF := s.queueTopF()
			for {
				seed := s.claim(topF)
				if seed == nil {
					break
				}
				s.pushSeed(seed)
				topF = s.queueTopF()
			}
		}
		e, ok := s.queuePop()
		if !ok {
			return nil
		}
		if s.frontier != nil && !s.frontier(e.f()) {
			s.recycleEnt(e)
			return nil
		}
		if e.accepted() {
			done, err := s.reportAccepted(e.id, report)
			s.acc.release(e.id)
			if err != nil {
				return err
			}
			if done {
				return nil
			}
			continue
		}
		// Viable: expand every child of the corresponding suffix-tree node.
		s.stats.NodesExpanded++
		id := e.id
		err := s.idx.VisitChildren(s.nodes.ref[id], int(s.nodes.depth[id]), func(child NodeRef, label EdgeLabel) error {
			r, err := s.expand(id, child, label)
			if err != nil {
				return err
			}
			if r.ok {
				s.push(r.f, r.accepted, r.id)
			}
			return nil
		})
		// The popped node (and its column vector) is no longer needed.
		s.releaseViable(id)
		if err != nil {
			return err
		}
	}
}

// rootNode builds the initial search node (paper Algorithm 2): the score
// vector is zero (alignments may skip any query prefix for free), pruned
// where even the full heuristic cannot reach minScore.  Because the
// heuristic is non-increasing in i, the live cells form the prefix [0, hi].
func (s *searcher) rootNode() (id int32, f int, ok bool) {
	m := len(s.query)
	hi := -1
	f = negInf
	for i := 0; i <= m; i++ {
		if s.h[i] >= s.opts.MinScore {
			hi = i
			if s.h[i] > f {
				f = s.h[i]
			}
		}
	}
	if hi < 0 {
		// Even a perfect match of the whole query cannot reach minScore.
		return -1, 0, false
	}
	lo := 0
	if s.full {
		hi = m
	}
	band := s.allocBand(hi - lo + 1)
	for i := lo; i <= hi; i++ {
		if s.h[i] >= s.opts.MinScore {
			band[i-lo] = 0
		} else {
			band[i-lo] = negInf32 // full-sweep mode stores the pruned tail too
		}
	}
	ns := s.nodes
	id = ns.alloc()
	ns.ref[id] = s.idx.Root()
	ns.depth[id] = 0
	ns.cLo[id] = int32(lo)
	ns.cHi[id] = int32(hi)
	ns.maxSc[id] = 0
	ns.qEnd[id] = 0
	ns.pDep[id] = 0
	ns.band[id] = band
	return id, f, true
}

// expandResult is expand's outcome: the stored child node (viable or
// accepted) and its priority bound, or ok == false for an unviable child.
type expandResult struct {
	id       int32
	f        int
	accepted bool
	ok       bool
}

// expand fills in the dynamic-programming columns for the symbols on the
// edge leading to child (paper Algorithm 3) and stores the resulting search
// node, or reports it unviable.
//
// The edge label is consumed lazily (chunk by chunk) so that long leaf edges
// are only read as far as the column sweep actually progresses before the
// node is accepted or discarded.
//
// The column sweep is banded: pruning leaves each column with a contiguous
// live interval [lo, hi] of non-negInf cells (cells outside it are never
// revived by later columns except through the insertion chain immediately
// above hi), so only cells reachable from the previous column's band are
// computed.  Options.DisableLiveBand widens the band to the full column,
// restoring the original exhaustive sweep; Options.ReferenceKernel selects
// the original guarded scalar sweep (see kernel.go for both kernels).
func (s *searcher) expand(parentID int32, child NodeRef, label EdgeLabel) (expandResult, error) {
	if s.refKernel {
		return s.expandRef(parentID, child, label)
	}
	return s.expandFast(parentID, child, label)
}

// closeOut stores a node whose subtree is finished — closed out by the prune
// rule, a leaf, or a terminator — as accepted (when its best score qualifies)
// or unviable.
func (s *searcher) closeOut(child NodeRef, maxScore, bestQEnd, bestDepth int32) expandResult {
	if int(maxScore) >= s.opts.MinScore {
		s.stats.NodesAccepted++
		id := s.acc.alloc()
		s.acc.ref[id] = child
		s.acc.score[id] = maxScore
		s.acc.qEnd[id] = bestQEnd
		s.acc.pDep[id] = bestDepth
		return expandResult{id: id, f: int(maxScore), accepted: true, ok: true}
	}
	s.stats.NodesUnviable++
	return expandResult{}
}

// storeViable stores a still-viable node and returns its queue entry.
func (s *searcher) storeViable(child NodeRef, depth int32, plo, phi int, band []int32, maxScore, bestQEnd, bestDepth int32, f int) expandResult {
	ns := s.nodes
	id := ns.alloc()
	ns.ref[id] = child
	ns.depth[id] = depth
	ns.maxSc[id] = maxScore
	ns.qEnd[id] = bestQEnd
	ns.pDep[id] = bestDepth
	ns.cLo[id] = int32(plo)
	ns.cHi[id] = int32(phi)
	b := s.allocBand(phi - plo + 1)
	copy(b, band[plo:phi+1])
	ns.band[id] = b
	return expandResult{id: id, f: f, ok: true}
}

// expandFast is expand on the branch-free edge kernel: sweepEdgeFast
// processes a whole edge-label chunk per call (capped to the cancellation
// poll interval when a context is set), so the per-column loop runs inside
// the kernel instead of re-crossing the call boundary every symbol.
func (s *searcher) expandFast(parentID int32, child NodeRef, label EdgeLabel) (expandResult, error) {
	m := len(s.query)
	gap := int32(s.opts.Scheme.Gap)
	minScore := int32(s.opts.MinScore)
	ns := s.nodes

	// prev/cur are searcher-owned scratch buffers (reused across every
	// expansion); prev starts as a copy of the parent's live band so the
	// parent's vector stays intact for its other children.  The locals swap
	// roles with every column the kernel completes; every return path below
	// re-synchronises the searcher fields so buffer ownership stays explicit.
	prev := s.prevBuf
	cur := s.curBuf
	plo, phi := int(ns.cLo[parentID]), int(ns.cHi[parentID])
	copy(prev[plo:phi+1], ns.band[parentID])
	maxScore := ns.maxSc[parentID]
	bestQEnd := ns.qEnd[parentID]
	bestDepth := ns.pDep[parentID]
	parentDepth := int(ns.depth[parentID])

	fBound := negInf
	consumed := 0
	var cells int64
	terminator := false
	labelLen := label.Len()
	for j := 0; j < labelLen && !terminator; {
		to := j + 64
		if to > labelLen {
			to = labelLen
		}
		chunk, err := label.Symbols(j, to)
		if err != nil {
			s.recordColumns(consumed, cells)
			s.prevBuf, s.curBuf = prev, cur
			return expandResult{}, err
		}
		j = to
		for len(chunk) > 0 && !terminator {
			part := chunk
			// Cancellation poll (Options.Context): cap the kernel call at the
			// remaining poll budget so a query stuck in a long hit-less DP
			// stretch still observes ctx within pollEvery columns instead of
			// only at the next hit callback.
			if s.ctx != nil && s.pollCountdown < len(part) {
				if s.pollCountdown < 1 {
					s.pollCountdown = 1
				}
				part = part[:s.pollCountdown]
			}
			r := sweepEdgeFast(prev, cur, s.profT, s.h32, s.profWidth, part, plo, phi, m, gap, maxScore, minScore, s.full)
			cells += r.cells
			if r.bestCol > 0 {
				bestQEnd = r.bestQEnd
				bestDepth = int32(parentDepth + consumed + int(r.bestCol))
			}
			maxScore = r.maxScore
			consumed += int(r.columns)
			terminator = r.terminator
			if r.swapped {
				prev, cur = cur, prev
			}
			switch r.status {
			case sweepClosed:
				// Nothing below this node can beat the alignment already
				// found along this path.
				s.recordColumns(consumed, cells)
				s.prevBuf, s.curBuf = prev, cur
				return s.closeOut(child, maxScore, bestQEnd, bestDepth), nil
			case sweepDead:
				s.recordColumns(consumed, cells)
				s.prevBuf, s.curBuf = prev, cur
				s.stats.NodesUnviable++
				return expandResult{}, nil
			}
			plo, phi = int(r.plo), int(r.phi)
			if r.columns > 0 {
				fBound = int(r.colBest)
			}
			chunk = chunk[r.columns:]
			if s.ctx != nil {
				s.pollCountdown -= int(r.columns)
				if s.pollCountdown <= 0 {
					s.pollCountdown = s.pollEvery
					if err := s.ctx.Err(); err != nil {
						s.recordColumns(consumed, cells)
						s.prevBuf, s.curBuf = prev, cur
						return expandResult{}, err
					}
				}
			}
		}
	}
	s.recordColumns(consumed, cells)
	// Keep the searcher's scratch pointers consistent with the swaps.
	s.prevBuf, s.curBuf = prev, cur

	// The whole edge label has been consumed (or a terminator reached).
	if child.IsLeaf() || terminator {
		// No further expansion is possible below a leaf or past a terminator.
		return s.closeOut(child, maxScore, bestQEnd, bestDepth), nil
	}
	if consumed == 0 {
		// Degenerate empty edge (cannot happen in a well-formed index).
		s.stats.NodesUnviable++
		return expandResult{}, nil
	}
	return s.storeViable(child, int32(parentDepth+consumed), plo, phi, prev, maxScore, bestQEnd, bestDepth, fBound), nil
}

// expandRef is expand on the retained scalar reference kernel
// (Options.ReferenceKernel): one guarded sweepColumnRef call per symbol, the
// original structure the fast path is differentially tested against.
func (s *searcher) expandRef(parentID int32, child NodeRef, label EdgeLabel) (expandResult, error) {
	m := len(s.query)
	gap := int32(s.opts.Scheme.Gap)
	minScore := int32(s.opts.MinScore)
	full := s.full
	ns := s.nodes

	prev := s.prevBuf
	cur := s.curBuf
	plo, phi := int(ns.cLo[parentID]), int(ns.cHi[parentID])
	copy(prev[plo:phi+1], ns.band[parentID])
	maxScore := ns.maxSc[parentID]
	bestQEnd := ns.qEnd[parentID]
	bestDepth := ns.pDep[parentID]
	parentDepth := int(ns.depth[parentID])

	hColumn := negInf32
	columns := 0
	var cells int64
	terminator := false
	labelLen := label.Len()
	var chunk []byte
	chunkStart, chunkEnd := 0, 0
	for j := 0; j < labelLen; j++ {
		if s.ctx != nil {
			s.pollCountdown--
			if s.pollCountdown <= 0 {
				s.pollCountdown = s.pollEvery
				if err := s.ctx.Err(); err != nil {
					s.recordColumns(columns, cells)
					s.prevBuf, s.curBuf = prev, cur
					return expandResult{}, err
				}
			}
		}
		if j >= chunkEnd {
			to := j + 64
			if to > labelLen {
				to = labelLen
			}
			var err error
			chunk, err = label.Symbols(j, to)
			if err != nil {
				s.prevBuf, s.curBuf = prev, cur
				return expandResult{}, err
			}
			chunkStart, chunkEnd = j, to
		}
		sym := chunk[j-chunkStart]
		if int(sym) >= s.profWidth {
			// Sequence terminator: alignments never extend across it; the
			// remaining label (if any) is beyond this sequence.
			terminator = true
			break
		}
		r := sweepColumnRef(prev, cur, s.prof, s.h32, s.profWidth, int(sym), plo, phi, m, gap, maxScore, minScore, full)
		cells += int64(r.cells)
		if r.maxScore > maxScore {
			maxScore = r.maxScore
			bestQEnd = r.bestQEnd
			bestDepth = int32(parentDepth + j + 1)
		}
		columns++
		hColumn = r.colBest
		if maxScore >= hColumn {
			s.recordColumns(columns, cells)
			s.prevBuf, s.curBuf = prev, cur
			return s.closeOut(child, maxScore, bestQEnd, bestDepth), nil
		}
		if hColumn < minScore {
			s.recordColumns(columns, cells)
			s.prevBuf, s.curBuf = prev, cur
			s.stats.NodesUnviable++
			return expandResult{}, nil
		}
		prev, cur = cur, prev
		plo, phi = int(r.curLo), int(r.curHi)
		if full {
			plo, phi = 0, m
		}
	}
	s.recordColumns(columns, cells)
	s.prevBuf, s.curBuf = prev, cur

	if child.IsLeaf() || terminator {
		return s.closeOut(child, maxScore, bestQEnd, bestDepth), nil
	}
	if columns == 0 {
		s.stats.NodesUnviable++
		return expandResult{}, nil
	}
	return s.storeViable(child, int32(parentDepth+columns), plo, phi, prev, maxScore, bestQEnd, bestDepth, int(hColumn)), nil
}

func (s *searcher) recordColumns(columns int, cells int64) {
	s.stats.ColumnsExpanded += int64(columns)
	s.stats.CellsComputed += cells
}

// reportAccepted reports every not-yet-reported sequence that contains a
// leaf below the accepted node id.  It returns true when the search is
// finished (callback cancelled, MaxResults reached, or every sequence
// reported).
func (s *searcher) reportAccepted(id int32, report func(Hit) bool) (bool, error) {
	ref := s.acc.ref[id]
	nScore := int(s.acc.score[id])
	nQEnd := int(s.acc.qEnd[id])
	nPDep := int(s.acc.pDep[id])
	done := false
	var walkErr error
	err := s.idx.LeafPositions(ref, func(pos int64) bool {
		seqIdx, local, err := s.cat.Locate(pos)
		if err != nil {
			walkErr = err
			return false
		}
		if s.reported[seqIdx] {
			return true
		}
		s.reported[seqIdx] = true
		s.sc.touched = append(s.sc.touched, seqIdx)
		s.nHits++
		s.stats.SequencesReported++
		hit := Hit{
			SeqIndex:  seqIdx,
			SeqID:     s.cat.SequenceID(seqIdx),
			Score:     nScore,
			QueryEnd:  nQEnd,
			TargetEnd: int(local) + nPDep,
			Rank:      s.nHits,
		}
		if hit.TargetEnd > s.cat.SequenceLength(seqIdx) {
			hit.TargetEnd = s.cat.SequenceLength(seqIdx)
		}
		if s.opts.KA != nil {
			hit.EValue = s.opts.KA.EValue(hit.Score, len(s.query), s.cat.TotalResidues())
		}
		if !report(hit) {
			done = true
			return false
		}
		if s.opts.MaxResults > 0 && s.nHits >= s.opts.MaxResults {
			done = true
			return false
		}
		if s.nHits >= s.cat.NumSequences() {
			done = true
			return false
		}
		return true
	})
	if walkErr != nil {
		return false, walkErr
	}
	return done, err
}

func (s *searcher) push(f int, accepted bool, id int32) {
	s.stats.NodesPushed++
	if s.useBuckets {
		s.bq.push(f, accepted, id)
		if s.bq.size > s.stats.MaxQueueSize {
			s.stats.MaxQueueSize = s.bq.size
		}
		return
	}
	s.pq.push(heapEnt{key: heapKey(f, accepted), seq: s.seqGen, id: id})
	s.seqGen++
	if s.pq.Len() > s.stats.MaxQueueSize {
		s.stats.MaxQueueSize = s.pq.Len()
	}
}

// SortHits orders hits by decreasing score then by sequence index; used when
// comparing result sets from different algorithms.
func SortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].SeqIndex < hits[j].SeqIndex
	})
}
