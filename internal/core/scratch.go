package core

import "repro/internal/score"

// Scratch holds every reusable buffer a searcher needs, so a long-running
// engine can run many queries without re-allocating per query: the reported
// flags, the DP column scratch pair, the heuristic and profile vectors, the
// recycled column/node free lists and the priority-queue backing array.
//
// A Scratch may be reused across queries of different lengths and across
// indexes of different sizes (buffers grow on demand and reported flags are
// cleared lazily), but it must only serve one search at a time: it is NOT
// safe for concurrent use.  Long-running engines keep one Scratch per worker
// (see internal/shard and internal/engine).
type Scratch struct {
	// reported flags sequences already reported by the current search; the
	// indexes set to true are recorded in touched so the next search clears
	// them in O(hits) instead of O(sequences).
	reported []bool
	touched  []int
	// prevBuf/curBuf are the column sweep's scratch pair.
	prevBuf []int
	curBuf  []int
	// h is the heuristic vector buffer; prof the query profile buffer.
	h    []int
	prof []int
	// freeBands/freeNodes recycle band slices (bucketed by power-of-two
	// capacity class, see searcher.allocBand) and searchNode structs across
	// node expansions and across queries.  Band classes are query-length
	// independent, so recycled bands carry over between queries of different
	// lengths without capacity checks.
	freeBands [][][]int
	freeNodes []*searchNode
	// heapItems is the priority queue's backing array.
	heapItems []*searchNode
}

// NewScratch returns an empty Scratch; buffers are allocated and grown by the
// searches that use it.
func NewScratch() *Scratch { return &Scratch{} }

// acquire prepares the scratch for a new search over a catalog of n sequences
// and a query of length m: flags left by the previous search are cleared and
// the fixed-size buffers are grown as needed.
func (sc *Scratch) acquire(n, m int, matrix *score.Matrix, query []byte) {
	for _, i := range sc.touched {
		if i < len(sc.reported) {
			sc.reported[i] = false
		}
	}
	sc.touched = sc.touched[:0]
	if len(sc.reported) < n {
		sc.reported = make([]bool, n)
	}
	if cap(sc.prevBuf) < m+1 {
		sc.prevBuf = make([]int, m+1)
	}
	sc.prevBuf = sc.prevBuf[:m+1]
	if cap(sc.curBuf) < m+1 {
		sc.curBuf = make([]int, m+1)
	}
	sc.curBuf = sc.curBuf[:m+1]
	sc.h = HeuristicVectorInto(sc.h, query, matrix)
	width := matrix.Size()
	need := m * width
	if cap(sc.prof) < need {
		sc.prof = make([]int, need)
	}
	sc.prof = sc.prof[:need]
	for i, q := range query {
		for sym := 0; sym < width; sym++ {
			sc.prof[i*width+sym] = matrix.Score(q, byte(sym))
		}
	}
}
