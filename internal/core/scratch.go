package core

import "repro/internal/score"

// Scratch holds every reusable buffer a searcher needs, so a long-running
// engine can run many queries without re-allocating per query: the reported
// flags, the DP column scratch pair, the heuristic and profile vectors, the
// structure-of-arrays node stores (see store.go), the recycled band free
// lists and the priority-queue backing array.
//
// A Scratch may be reused across queries of different lengths and across
// indexes of different sizes (buffers grow on demand and reported flags are
// cleared lazily), but it must only serve one search at a time: it is NOT
// safe for concurrent use.  Long-running engines keep one Scratch per worker
// (see internal/shard and internal/engine).
type Scratch struct {
	// reported flags sequences already reported by the current search; the
	// indexes set to true are recorded in touched so the next search clears
	// them in O(hits) instead of O(sequences).
	reported []bool
	touched  []int
	// prevBuf/curBuf are the column sweep's scratch pair: m+2 cells so the
	// fast kernel can write its above-band sentinel at index m+1 (kernel.go).
	prevBuf []int32
	curBuf  []int32
	// h is the heuristic vector buffer; h32 its int32 copy for the kernels.
	h   []int
	h32 []int32
	// prof is the row-major query profile (prof[(i-1)*width + sym], reference
	// kernel); profT the transposed profile (profT[sym*m + i-1], fast kernel).
	prof  []int32
	profT []int32
	// freeBands recycles band slices, bucketed by power-of-two capacity class
	// (see searcher.allocBand).  Band classes are query-length independent,
	// so recycled bands carry over between queries of different lengths
	// without capacity checks.
	freeBands [][][]int32
	// nodes/acc are the structure-of-arrays stores for viable and accepted
	// search nodes (store.go); reset between queries, arrays reused.
	nodes nodeStore
	acc   accStore
	// bq is the bucket priority queue (lanes and entry arena reused across
	// queries); heapItems backs the fallback heap.
	bq        bucketQueue
	heapItems []heapEnt
}

// NewScratch returns an empty Scratch; buffers are allocated and grown by the
// searches that use it.
func NewScratch() *Scratch { return &Scratch{} }

// acquire prepares the scratch for a new search over a catalog of n sequences
// and a query of length m: flags left by the previous search are cleared and
// the fixed-size buffers are grown as needed.
func (sc *Scratch) acquire(n, m int, matrix *score.Matrix, query []byte) {
	for _, i := range sc.touched {
		if i < len(sc.reported) {
			sc.reported[i] = false
		}
	}
	sc.touched = sc.touched[:0]
	if len(sc.reported) < n {
		sc.reported = make([]bool, n)
	}
	if cap(sc.prevBuf) < m+2 {
		sc.prevBuf = make([]int32, m+2)
	}
	sc.prevBuf = sc.prevBuf[:m+2]
	if cap(sc.curBuf) < m+2 {
		sc.curBuf = make([]int32, m+2)
	}
	sc.curBuf = sc.curBuf[:m+2]
	sc.h = HeuristicVectorInto(sc.h, query, matrix)
	if cap(sc.h32) < m+1 {
		sc.h32 = make([]int32, m+1)
	}
	sc.h32 = sc.h32[:m+1]
	for i, v := range sc.h {
		sc.h32[i] = int32(v)
	}
	width := matrix.Size()
	need := m * width
	if cap(sc.prof) < need {
		sc.prof = make([]int32, need)
		sc.profT = make([]int32, need)
	}
	sc.prof = sc.prof[:need]
	sc.profT = sc.profT[:need]
	for i, q := range query {
		for sym := 0; sym < width; sym++ {
			v := int32(matrix.Score(q, byte(sym)))
			sc.prof[i*width+sym] = v
			sc.profT[sym*m+i] = v
		}
	}
	sc.nodes.reset()
	sc.acc.reset()
}
