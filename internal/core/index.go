// Package core implements the OASIS search algorithm: an A* (best-first)
// dynamic-programming search for local alignments, driven by a generalized
// suffix tree over the sequence database (paper Section 3).
//
// The search operates over the Index interface, which is implemented both by
// an in-memory suffix tree (MemoryIndex, backed by internal/suffixtree) and
// by the disk-resident representation read through a buffer pool
// (internal/diskst).
package core

import (
	"repro/internal/seq"
)

// NodeRef identifies a node of a suffix-tree index.  Internal nodes are
// numbered 0..numInternal-1 (the root is 0); leaves are identified by the
// global start position of the suffix they represent, encoded as a negative
// value so the two spaces cannot collide.
type NodeRef int64

// InternalRef returns the reference of the internal node with the given
// index.
func InternalRef(index int64) NodeRef { return NodeRef(index) }

// LeafRef returns the reference of the leaf whose suffix starts at the given
// global position.
func LeafRef(pos int64) NodeRef { return NodeRef(-(pos + 1)) }

// IsLeaf reports whether the reference denotes a leaf.
func (r NodeRef) IsLeaf() bool { return r < 0 }

// LeafPos returns the suffix start position of a leaf reference.
func (r NodeRef) LeafPos() int64 { return -int64(r) - 1 }

// InternalIndex returns the index of an internal-node reference.
func (r NodeRef) InternalIndex() int64 { return int64(r) }

// Catalog describes the sequences covered by an index.  It is the metadata
// OASIS needs to map suffix positions back to sequences and to report hits.
type Catalog interface {
	// Alphabet returns the residue alphabet of the indexed sequences.
	Alphabet() *seq.Alphabet
	// NumSequences returns the number of indexed sequences.
	NumSequences() int
	// SequenceID returns the identifier of sequence i.
	SequenceID(i int) string
	// SequenceLength returns the residue count of sequence i.
	SequenceLength(i int) int
	// TotalResidues returns the total residue count across all sequences.
	TotalResidues() int64
	// Locate maps a global position in the concatenated symbol view to a
	// sequence index and a local offset within that sequence.
	Locate(pos int64) (seqIndex int, offset int64, err error)
	// Residues returns the encoded residues of sequence i (used to recover
	// full alignments for reported hits).
	Residues(i int) ([]byte, error)
}

// EdgeLabel provides lazy access to the symbols labelling a suffix-tree
// edge.  The OASIS expansion usually decides a node's fate after the first
// few symbols, so indexes (in particular the disk-resident one) avoid
// materialising long leaf edges unless the search actually consumes them.
type EdgeLabel interface {
	// Len returns the number of symbols on the edge (a leaf edge ends with
	// the sequence terminator, which is included in the count).
	Len() int
	// Symbols returns the symbols in [from, to).  The returned slice is
	// only valid until the next Symbols call or until the enclosing
	// VisitChildren callback returns.
	Symbols(from, to int) ([]byte, error)
}

// Index is the read-only view of a generalized suffix tree that drives the
// OASIS search.
//
// Edge lengths in the paper's disk layout are derived from node depths
// ("the length of the arc can be determined by subtracting the depth of the
// parent node from the depth of the incident node"), so traversal methods
// take the parent's path depth as an argument; OASIS always traverses
// top-down and therefore always knows it.
type Index interface {
	// Root returns the reference of the root node.
	Root() NodeRef
	// VisitChildren calls fn once for every child of ref, passing the
	// child's reference and its incoming edge label (the label of a leaf
	// edge ends with the sequence terminator).  The label is only valid
	// for the duration of the callback and may be backed by storage that
	// is reused between callbacks.  parentDepth is the number of symbols
	// on the path from the root to ref.
	VisitChildren(ref NodeRef, parentDepth int, fn func(child NodeRef, label EdgeLabel) error) error
	// LeafPositions calls fn with the suffix start position of every leaf
	// in the subtree rooted at ref, stopping early if fn returns false.
	LeafPositions(ref NodeRef, fn func(pos int64) bool) error
	// Catalog returns the sequence catalog of the index.
	Catalog() Catalog
}

// ByteLabel is an EdgeLabel backed by an in-memory byte slice.  Use a
// pointer when passing it through the EdgeLabel interface in hot paths so
// the conversion does not allocate.
type ByteLabel struct{ B []byte }

// Len implements EdgeLabel.
func (l *ByteLabel) Len() int { return len(l.B) }

// Symbols implements EdgeLabel.
func (l *ByteLabel) Symbols(from, to int) ([]byte, error) { return l.B[from:to], nil }

// LabelBytes materialises an entire edge label; a convenience for callers
// (tests, debugging tools) that want the full label regardless of length.
func LabelBytes(l EdgeLabel) ([]byte, error) {
	s, err := l.Symbols(0, l.Len())
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(s))
	copy(out, s)
	return out, nil
}
