package core

import (
	"bytes"
	"testing"

	"repro/internal/fuzzutil"
	"repro/internal/score"
	"repro/internal/seq"
)

// fuzzDatabase / fuzzQuery derive search inputs from fuzzer bytes (shared
// with internal/shard's fuzz target via internal/fuzzutil).
func fuzzDatabase(a *seq.Alphabet, data []byte) *seq.Database {
	return fuzzutil.DatabaseFromBytes(a, data)
}

func fuzzQuery(a *seq.Alphabet, data []byte) []byte {
	return fuzzutil.QueryFromBytes(a, data, 64)
}

// FuzzLiveBandEquivalence asserts the live-band DP kernel's core contract on
// arbitrary inputs: searching with the band must report exactly the hits —
// same sequences, same scores, same endpoints, same order — as the
// exhaustive full-column sweep (Options.DisableLiveBand).  Both runs share
// long-lived Scratches across fuzz iterations, so stale-buffer bugs in the
// band bookkeeping (cells outside [cLo, cHi] must never be read) surface as
// mismatches.
func FuzzLiveBandEquivalence(f *testing.F) {
	f.Add([]byte("ACGTACGTTTACGGACGT\x00GGGTTTACGT\x00ACACACAC"), []byte("ACGTAC"), uint8(3))
	f.Add([]byte("TTTTTTTTTT\x00TTTTT"), []byte("TTTT"), uint8(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 0, 11, 12, 13, 14}, []byte{5, 6, 7}, uint8(2))
	scheme := score.MustScheme(score.UnitDNA(), -1)
	bandScratch := NewScratch()
	fullScratch := NewScratch()
	f.Fuzz(func(t *testing.T, dbData, queryData []byte, minByte uint8) {
		db := fuzzDatabase(seq.DNA, dbData)
		q := fuzzQuery(seq.DNA, queryData)
		if db == nil || q == nil {
			t.Skip()
		}
		idx, err := BuildMemoryIndex(db)
		if err != nil {
			t.Fatalf("index build: %v", err)
		}
		minScore := 1 + int(minByte%12)
		var bandStats, fullStats Stats
		band, err := SearchAll(idx, q, Options{
			Scheme: scheme, MinScore: minScore, Stats: &bandStats, Scratch: bandScratch,
		})
		if err != nil {
			t.Fatalf("band search: %v", err)
		}
		full, err := SearchAll(idx, q, Options{
			Scheme: scheme, MinScore: minScore, Stats: &fullStats,
			DisableLiveBand: true, Scratch: fullScratch,
		})
		if err != nil {
			t.Fatalf("full-sweep search: %v", err)
		}
		if len(band) != len(full) {
			t.Fatalf("hit count: band %d, full sweep %d (db %q, query %q, minScore %d)",
				len(band), len(full), dbData, queryData, minScore)
		}
		for i := range band {
			if band[i] != full[i] {
				t.Fatalf("hit %d differs: band %+v, full sweep %+v (minScore %d)",
					i, band[i], full[i], minScore)
			}
		}
		if bandStats.CellsComputed > fullStats.CellsComputed {
			t.Fatalf("band computed MORE cells than the full sweep: %d > %d",
				bandStats.CellsComputed, fullStats.CellsComputed)
		}
		// Row-0 skip equivalence: neither mode computes the provably dead
		// row 0, and the band only changes which cells of a column are
		// touched — never which columns are expanded.
		if bandStats.ColumnsExpanded != fullStats.ColumnsExpanded {
			t.Fatalf("band expanded %d columns, full sweep %d (row-0 skip or band changed filtering)",
				bandStats.ColumnsExpanded, fullStats.ColumnsExpanded)
		}
		if bandStats.MaxBandWidth > len(q)+1 {
			t.Fatalf("band width %d exceeds the full column %d", bandStats.MaxBandWidth, len(q)+1)
		}
		if bandStats.SequencesReported != int64(len(band)) {
			t.Fatalf("stats report %d sequences, stream had %d", bandStats.SequencesReported, len(band))
		}
	})
}

// FuzzScratchReuseDeterminism asserts that searching with a reused Scratch is
// bit-identical to searching with fresh buffers, across arbitrary
// query/database successions (the warm engine's correctness foundation).
func FuzzScratchReuseDeterminism(f *testing.F) {
	f.Add([]byte("ACGTACGTTTACGG\x00GGGTTTACGT"), []byte("ACGT"), []byte("GGTTT"))
	scheme := score.MustScheme(score.UnitDNA(), -1)
	warm := NewScratch()
	f.Fuzz(func(t *testing.T, dbData, q1Data, q2Data []byte) {
		db := fuzzDatabase(seq.DNA, dbData)
		q1 := fuzzQuery(seq.DNA, q1Data)
		q2 := fuzzQuery(seq.DNA, q2Data)
		if db == nil || q1 == nil || q2 == nil {
			t.Skip()
		}
		idx, err := BuildMemoryIndex(db)
		if err != nil {
			t.Fatalf("index build: %v", err)
		}
		// Run q1 then q2 on the shared warm scratch; each must match a
		// fresh-scratch run (q1 deliberately pollutes the buffers for q2).
		for _, q := range [][]byte{q1, q2, q1} {
			opts := Options{Scheme: scheme, MinScore: 2}
			fresh, err := SearchAll(idx, q, opts)
			if err != nil {
				t.Fatalf("fresh search: %v", err)
			}
			opts.Scratch = warm
			reused, err := SearchAll(idx, q, opts)
			if err != nil {
				t.Fatalf("warm search: %v", err)
			}
			if len(fresh) != len(reused) {
				t.Fatalf("hit count: fresh %d, warm %d", len(fresh), len(reused))
			}
			for i := range fresh {
				if fresh[i] != reused[i] {
					t.Fatalf("hit %d differs: fresh %+v, warm %+v", i, fresh[i], reused[i])
				}
			}
		}
	})
}

// TestFuzzHelpersRejectDegenerateInput pins the skip conditions so corpus
// shrinkage does not silently skip everything.
func TestFuzzHelpersRejectDegenerateInput(t *testing.T) {
	if fuzzDatabase(seq.DNA, nil) != nil {
		t.Fatal("empty data should produce no database")
	}
	if fuzzDatabase(seq.DNA, bytes.Repeat([]byte{0}, 10)) != nil {
		t.Fatal("all-separator data should produce no database")
	}
	if db := fuzzDatabase(seq.DNA, []byte("ACGT")); db == nil || db.NumSequences() != 1 {
		t.Fatal("plain data should produce one sequence")
	}
	if fuzzQuery(seq.DNA, nil) != nil {
		t.Fatal("empty query data should be rejected")
	}
}

// FuzzKernelEquivalence is the branch-free kernel's differential harness: on
// arbitrary databases, queries, gap penalties and score cutoffs, the SoA
// edge-sweep kernel (kernel.go's sweepEdgeFast) must be observationally
// identical to the retained scalar reference kernel (Options.ReferenceKernel,
// sweepColumnRef) — the same hits with the same endpoints in the same order,
// and the same work profile: columns expanded, cells computed (the sum of the
// per-column live-band interval widths), the widest band stored, and every
// accept/unviable decision.  Any divergence in the band arithmetic — a
// clamped interval off by one, a select that revives a dead cell — shows up
// as a cell-count or band-width mismatch even when the hits happen to agree.
// Both live-band modes are exercised: DisableLiveBand widens the band to the
// full column, which pins the kernels' full-column code paths against each
// other too.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add([]byte("ACGTACGTTTACGGACGT\x00GGGTTTACGT\x00ACACACAC"), []byte("ACGTAC"), uint8(3), uint8(1), false)
	f.Add([]byte("TTTTTTTTTT\x00TTTTT"), []byte("TTTT"), uint8(1), uint8(2), true)
	f.Add([]byte("ACGGGTACCA\x00CCCGGGTTTAAA\x00GTGTGTGTGT"), []byte("GGGTTT"), uint8(4), uint8(4), false)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 0, 11, 12, 13, 14}, []byte{5, 6, 7}, uint8(2), uint8(1), true)
	fastScratch := NewScratch()
	refScratch := NewScratch()
	f.Fuzz(func(t *testing.T, dbData, queryData []byte, minByte, gapByte uint8, disableBand bool) {
		db := fuzzDatabase(seq.DNA, dbData)
		q := fuzzQuery(seq.DNA, queryData)
		if db == nil || q == nil {
			t.Skip()
		}
		idx, err := BuildMemoryIndex(db)
		if err != nil {
			t.Fatalf("index build: %v", err)
		}
		opts := Options{
			Scheme:          score.MustScheme(score.UnitDNA(), -1-int(gapByte%4)),
			MinScore:        1 + int(minByte%12),
			DisableLiveBand: disableBand,
		}
		var fastStats, refStats Stats
		fastOpts := opts
		fastOpts.Stats = &fastStats
		fastOpts.Scratch = fastScratch
		fast, err := SearchAll(idx, q, fastOpts)
		if err != nil {
			t.Fatalf("fast kernel: %v", err)
		}
		refOpts := opts
		refOpts.Stats = &refStats
		refOpts.Scratch = refScratch
		refOpts.ReferenceKernel = true
		ref, err := SearchAll(idx, q, refOpts)
		if err != nil {
			t.Fatalf("reference kernel: %v", err)
		}
		if len(fast) != len(ref) {
			t.Fatalf("hit count: fast %d, reference %d (db %q, query %q, opts %+v)",
				len(fast), len(ref), dbData, queryData, opts)
		}
		for i := range fast {
			if fast[i] != ref[i] {
				t.Fatalf("hit %d differs: fast %+v, reference %+v (opts %+v)",
					i, fast[i], ref[i], opts)
			}
		}
		type workProfile struct {
			columns, cells, accepted, unviable, reported int64
			maxBand                                      int
		}
		fastWork := workProfile{fastStats.ColumnsExpanded, fastStats.CellsComputed,
			fastStats.NodesAccepted, fastStats.NodesUnviable, fastStats.SequencesReported,
			fastStats.MaxBandWidth}
		refWork := workProfile{refStats.ColumnsExpanded, refStats.CellsComputed,
			refStats.NodesAccepted, refStats.NodesUnviable, refStats.SequencesReported,
			refStats.MaxBandWidth}
		if fastWork != refWork {
			t.Fatalf("work profile diverged:\n fast: %+v\n  ref: %+v\n(db %q, query %q, opts %+v)",
				fastWork, refWork, dbData, queryData, opts)
		}
	})
}
