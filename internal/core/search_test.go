package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/align"
	"repro/internal/score"
	"repro/internal/seq"
)

var unitScheme = score.MustScheme(score.UnitDNA(), -1)

func memIndex(t *testing.T, db *seq.Database) *MemoryIndex {
	t.Helper()
	idx, err := BuildMemoryIndex(db)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestPaperRunningExample(t *testing.T) {
	// Paper Section 3.3: query TACG against AGTACGCCTAG with the unit
	// matrix and minScore 1 finds the maximum local alignment with score 4.
	db, err := seq.DatabaseFromStrings(seq.DNA, "AGTACGCCTAG")
	if err != nil {
		t.Fatal(err)
	}
	idx := memIndex(t, db)
	q := seq.DNA.MustEncode("TACG")
	hits, err := SearchAll(idx, q, Options{Scheme: unitScheme, MinScore: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("got %d hits, want 1", len(hits))
	}
	h := hits[0]
	if h.Score != 4 || h.SeqIndex != 0 || h.SeqID != "seq0" || h.Rank != 1 {
		t.Fatalf("hit = %+v", h)
	}
	// The optimal alignment TACG=TACG ends at query position 4 and target
	// offset 6 (0-based exclusive).
	if h.QueryEnd != 4 || h.TargetEnd != 6 {
		t.Fatalf("alignment end = (%d,%d), want (4,6)", h.QueryEnd, h.TargetEnd)
	}
}

func TestHeuristicVector(t *testing.T) {
	q := seq.DNA.MustEncode("TACG")
	h := HeuristicVector(q, score.UnitDNA())
	want := []int{4, 3, 2, 1, 0}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("H = %v, want %v", h, want)
		}
	}
	// A matrix with negative diagonal for a symbol contributes zero, never
	// a negative amount (the heuristic must stay admissible).
	neg := score.MatchMismatch("neg", seq.DNA, 2, -1)
	qn := seq.DNA.MustEncode("NN") // N never matches positively
	hn := HeuristicVector(qn, neg)
	if hn[0] != 0 || hn[1] != 0 || hn[2] != 0 {
		t.Fatalf("H(NN) = %v, want zeros", hn)
	}
}

// swBestPerSequence computes, with plain Smith-Waterman, the optimal score
// for every database sequence, keeping those >= minScore.
func swBestPerSequence(db *seq.Database, q []byte, sch score.Scheme, minScore int) map[int]int {
	out := map[int]int{}
	for i := 0; i < db.NumSequences(); i++ {
		s := align.Score(q, db.Sequence(i).Residues, sch, nil)
		if s >= minScore {
			out[i] = s
		}
	}
	return out
}

func checkAgainstSW(t *testing.T, db *seq.Database, idx Index, q []byte, sch score.Scheme, minScore int) {
	t.Helper()
	hits, err := SearchAll(idx, q, Options{Scheme: sch, MinScore: minScore})
	if err != nil {
		t.Fatal(err)
	}
	want := swBestPerSequence(db, q, sch, minScore)
	got := map[int]int{}
	prevScore := int(^uint(0) >> 1)
	for _, h := range hits {
		if _, dup := got[h.SeqIndex]; dup {
			t.Fatalf("sequence %d reported twice", h.SeqIndex)
		}
		got[h.SeqIndex] = h.Score
		if h.Score > prevScore {
			t.Fatalf("hits not in decreasing score order: %d after %d", h.Score, prevScore)
		}
		prevScore = h.Score
	}
	if len(got) != len(want) {
		t.Fatalf("OASIS reported %d sequences, S-W found %d (query %v minScore %d)\n got: %v\nwant: %v",
			len(got), len(want), q, minScore, got, want)
	}
	for i, s := range want {
		if got[i] != s {
			t.Fatalf("sequence %d: OASIS score %d, S-W score %d", i, got[i], s)
		}
	}
}

func TestOASISMatchesSmithWatermanDNA(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		nSeq := 1 + rng.Intn(6)
		var strsCase []string
		for i := 0; i < nSeq; i++ {
			strsCase = append(strsCase, randomDNAString(rng, 5+rng.Intn(80)))
		}
		db, err := seq.DatabaseFromStrings(seq.DNA, strsCase...)
		if err != nil {
			t.Fatal(err)
		}
		idx := memIndex(t, db)
		for qi := 0; qi < 4; qi++ {
			qLen := 3 + rng.Intn(12)
			var q []byte
			if rng.Intn(2) == 0 {
				// Plant the query inside a database sequence so strong hits exist.
				si := rng.Intn(nSeq)
				res := db.Sequence(si).Residues
				if len(res) > qLen {
					start := rng.Intn(len(res) - qLen)
					q = append([]byte(nil), res[start:start+qLen]...)
					// Mutate one position.
					q[rng.Intn(len(q))] = byte(rng.Intn(4))
				}
			}
			if q == nil {
				q = seq.DNA.MustEncode(randomDNAString(rng, qLen))
			}
			for _, gap := range []int{-1, -2} {
				sch := score.MustScheme(score.UnitDNA(), gap)
				for _, minScore := range []int{1, 2, 4} {
					checkAgainstSW(t, db, idx, q, sch, minScore)
				}
			}
		}
	}
}

func TestOASISMatchesSmithWatermanProtein(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		var strsCase []string
		for i := 0; i < 1+rng.Intn(5); i++ {
			strsCase = append(strsCase, randomProteinString(rng, 10+rng.Intn(120)))
		}
		db, err := seq.DatabaseFromStrings(seq.Protein, strsCase...)
		if err != nil {
			t.Fatal(err)
		}
		idx := memIndex(t, db)
		for qi := 0; qi < 3; qi++ {
			si := rng.Intn(db.NumSequences())
			res := db.Sequence(si).Residues
			qLen := 6 + rng.Intn(10)
			if qLen > len(res) {
				qLen = len(res)
			}
			start := rng.Intn(len(res) - qLen + 1)
			q := append([]byte(nil), res[start:start+qLen]...)
			if len(q) > 2 {
				q[rng.Intn(len(q))] = byte(rng.Intn(20))
			}
			for _, mtx := range []*score.Matrix{score.BLOSUM62(), score.PAM30()} {
				sch := score.MustScheme(mtx, -8)
				for _, minScore := range []int{5, 15, 30} {
					checkAgainstSW(t, db, idx, q, sch, minScore)
				}
			}
		}
	}
}

func TestOnlineOrderIsDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var strsCase []string
	base := randomDNAString(rng, 30)
	for i := 0; i < 20; i++ {
		// Sequences share a common core so many of them match the query
		// with varying strength.
		strsCase = append(strsCase, randomDNAString(rng, rng.Intn(20))+base[:10+rng.Intn(20)]+randomDNAString(rng, rng.Intn(20)))
	}
	db, err := seq.DatabaseFromStrings(seq.DNA, strsCase...)
	if err != nil {
		t.Fatal(err)
	}
	idx := memIndex(t, db)
	q := seq.DNA.MustEncode(base[:15])
	var scores []int
	err = Search(idx, q, Options{Scheme: unitScheme, MinScore: 2}, func(h Hit) bool {
		scores = append(scores, h.Score)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) == 0 {
		t.Fatal("expected hits")
	}
	for i := 1; i < len(scores); i++ {
		if scores[i] > scores[i-1] {
			t.Fatalf("scores not descending: %v", scores)
		}
	}
}

func TestMaxResultsAndCancellation(t *testing.T) {
	db, err := seq.DatabaseFromStrings(seq.DNA, "TACGAA", "TTACG", "GGTACG", "TACG", "CCCC")
	if err != nil {
		t.Fatal(err)
	}
	idx := memIndex(t, db)
	q := seq.DNA.MustEncode("TACG")

	hits, err := SearchAll(idx, q, Options{Scheme: unitScheme, MinScore: 1, MaxResults: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("MaxResults: got %d hits", len(hits))
	}

	count := 0
	err = Search(idx, q, Options{Scheme: unitScheme, MinScore: 1}, func(h Hit) bool {
		count++
		return false // cancel immediately
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("cancellation: callback called %d times", count)
	}
}

func TestMinScoreUnreachableReturnsNothing(t *testing.T) {
	db, _ := seq.DatabaseFromStrings(seq.DNA, "ACGTACGT")
	idx := memIndex(t, db)
	q := seq.DNA.MustEncode("ACG")
	// Maximum possible score is 3; ask for 10.
	hits, err := SearchAll(idx, q, Options{Scheme: unitScheme, MinScore: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("expected no hits, got %+v", hits)
	}
}

func TestSearchValidation(t *testing.T) {
	db, _ := seq.DatabaseFromStrings(seq.DNA, "ACGT")
	idx := memIndex(t, db)
	q := seq.DNA.MustEncode("ACG")
	if _, err := SearchAll(nil, q, Options{Scheme: unitScheme, MinScore: 1}); err == nil {
		t.Fatal("expected error for nil index")
	}
	if _, err := SearchAll(idx, nil, Options{Scheme: unitScheme, MinScore: 1}); err == nil {
		t.Fatal("expected error for empty query")
	}
	if _, err := SearchAll(idx, q, Options{Scheme: unitScheme, MinScore: 0}); err == nil {
		t.Fatal("expected error for MinScore 0")
	}
	if _, err := SearchAll(idx, q, Options{MinScore: 1}); err == nil {
		t.Fatal("expected error for missing scheme")
	}
	// Protein matrix against a DNA index must be rejected.
	if _, err := SearchAll(idx, q, Options{Scheme: score.MustScheme(score.BLOSUM62(), -8), MinScore: 1}); err == nil {
		t.Fatal("expected error for alphabet mismatch")
	}
	// Query containing a terminator code is invalid.
	if _, err := SearchAll(idx, []byte{0, seq.Terminator}, Options{Scheme: unitScheme, MinScore: 1}); err == nil {
		t.Fatal("expected error for invalid query codes")
	}
}

func TestStatsColumnsAreFractionOfSW(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	var strsCase []string
	for i := 0; i < 30; i++ {
		strsCase = append(strsCase, randomProteinString(rng, 80+rng.Intn(80)))
	}
	db, err := seq.DatabaseFromStrings(seq.Protein, strsCase...)
	if err != nil {
		t.Fatal(err)
	}
	idx := memIndex(t, db)
	res := db.Sequence(3).Residues
	q := append([]byte(nil), res[10:26]...)
	sch := score.MustScheme(score.PAM30(), -10)

	var st Stats
	if _, err := SearchAll(idx, q, Options{Scheme: sch, MinScore: 40, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if st.ColumnsExpanded == 0 || st.NodesExpanded == 0 || st.NodesPushed == 0 {
		t.Fatalf("stats not collected: %+v", st)
	}
	// Smith-Waterman expands one column per database symbol.
	swColumns := db.TotalResidues()
	if st.ColumnsExpanded >= swColumns {
		t.Fatalf("OASIS expanded %d columns, S-W would expand %d — no filtering at all",
			st.ColumnsExpanded, swColumns)
	}
	var st2 Stats
	st2.Add(st)
	st2.Add(st)
	if st2.ColumnsExpanded != 2*st.ColumnsExpanded || st2.MaxQueueSize != st.MaxQueueSize {
		t.Fatalf("Stats.Add wrong: %+v", st2)
	}
}

func TestEValuesAttached(t *testing.T) {
	db, _ := seq.DatabaseFromStrings(seq.DNA, "AGTACGCCTAG", "TTTTTTT")
	idx := memIndex(t, db)
	q := seq.DNA.MustEncode("TACG")
	ka, err := score.Params(score.UnitDNA(), nil)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := SearchAll(idx, q, Options{Scheme: unitScheme, MinScore: 1, KA: &ka})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].EValue <= 0 {
		t.Fatalf("expected positive E-value, got %+v", hits)
	}
}

func TestRecoverAlignment(t *testing.T) {
	db, _ := seq.DatabaseFromStrings(seq.DNA, "AGTACGCCTAG")
	idx := memIndex(t, db)
	q := seq.DNA.MustEncode("TACG")
	hits, err := SearchAll(idx, q, Options{Scheme: unitScheme, MinScore: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := RecoverAlignment(idx, q, unitScheme, hits[0])
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != 4 || a.CIGAR() != "4M" {
		t.Fatalf("alignment = %+v %s", a.Hit, a.CIGAR())
	}
	if _, err := RecoverAlignment(idx, q, unitScheme, Hit{SeqIndex: 9}); err == nil {
		t.Fatal("expected range error")
	}
	// A hit with an impossible score must be detected.
	bad := hits[0]
	bad.Score = 999
	if _, err := RecoverAlignment(idx, q, unitScheme, bad); err == nil {
		t.Fatal("expected score mismatch error")
	}
}

func TestMultiSequenceReporting(t *testing.T) {
	// Several sequences contain the query at different strengths; each must
	// be reported exactly once, with its own optimal score.
	db, err := seq.DatabaseFromStrings(seq.DNA,
		"TACGTACG",   // two exact occurrences (score 4)
		"TAGG",       // partial (score 2: TA)
		"CCCCCCCC",   // nothing
		"GGTACGGG",   // exact (score 4)
		"TTTAACGTT",  // TA-CG with gap or TAACG region
		"ACGTTTTTTT", // suffix match ACG (score 3)
	)
	if err != nil {
		t.Fatal(err)
	}
	idx := memIndex(t, db)
	q := seq.DNA.MustEncode("TACG")
	checkAgainstSW(t, db, idx, q, unitScheme, 2)
}

func TestNodeHeapOrdering(t *testing.T) {
	var h nodeHeap
	h.push(heapEnt{key: heapKey(5, false), seq: 0})
	h.push(heapEnt{key: heapKey(9, false), seq: 1})
	h.push(heapEnt{key: heapKey(9, true), seq: 2})
	h.push(heapEnt{key: heapKey(1, false), seq: 3})
	h.push(heapEnt{key: heapKey(7, false), seq: 4})
	// Highest f first; among equal f the accepted node wins.
	e := h.pop()
	if e.f() != 9 || !e.accepted() {
		t.Fatalf("first pop = f %d accepted %v", e.f(), e.accepted())
	}
	order := []int{9, 7, 5, 1}
	for _, want := range order {
		if got := h.pop().f(); got != want {
			t.Fatalf("pop order wrong: got %d want %d", got, want)
		}
	}
	if h.Len() != 0 {
		t.Fatal("heap not empty")
	}
}

func TestHeapKeyRoundTrip(t *testing.T) {
	for _, f := range []int{negInf, negInf + 1, -1, 0, 1, 5, maxKernelScore} {
		for _, acc := range []bool{false, true} {
			e := heapEnt{key: heapKey(f, acc)}
			if e.f() != f || e.accepted() != acc {
				t.Fatalf("round trip (%d,%v) -> (%d,%v)", f, acc, e.f(), e.accepted())
			}
		}
	}
	// Accepted wins at equal f but never outranks a higher f.
	if !entLess(heapEnt{key: heapKey(9, true)}, heapEnt{key: heapKey(9, false)}) {
		t.Fatal("accepted should outrank viable at equal f")
	}
	if entLess(heapEnt{key: heapKey(9, true)}, heapEnt{key: heapKey(10, false)}) {
		t.Fatal("higher f must outrank the accepted bit")
	}
}

func TestNodeRefEncoding(t *testing.T) {
	for _, pos := range []int64{0, 1, 12345, 1 << 40} {
		r := LeafRef(pos)
		if !r.IsLeaf() || r.LeafPos() != pos {
			t.Fatalf("leaf ref round trip failed for %d", pos)
		}
	}
	for _, idx := range []int64{0, 7, 1 << 30} {
		r := InternalRef(idx)
		if r.IsLeaf() || r.InternalIndex() != idx {
			t.Fatalf("internal ref round trip failed for %d", idx)
		}
	}
}

func TestSortHits(t *testing.T) {
	hits := []Hit{{SeqIndex: 2, Score: 5}, {SeqIndex: 1, Score: 9}, {SeqIndex: 0, Score: 5}}
	SortHits(hits)
	if hits[0].Score != 9 || hits[1].SeqIndex != 0 || hits[2].SeqIndex != 2 {
		t.Fatalf("SortHits wrong: %+v", hits)
	}
}

func TestMemoryIndexErrors(t *testing.T) {
	db, _ := seq.DatabaseFromStrings(seq.DNA, "ACGT")
	other, _ := seq.DatabaseFromStrings(seq.DNA, "ACGT")
	idx := memIndex(t, db)
	if _, err := NewMemoryIndex(nil, db); err == nil {
		t.Fatal("expected error for nil tree")
	}
	if _, err := NewMemoryIndex(idx.Tree(), other); err == nil {
		t.Fatal("expected error for mismatched database")
	}
	if err := idx.VisitChildren(InternalRef(999), 0, func(NodeRef, EdgeLabel) error { return nil }); err == nil {
		t.Fatal("expected error for bad ref")
	}
	if err := idx.LeafPositions(LeafRef(999), func(int64) bool { return true }); err == nil {
		t.Fatal("expected error for bad leaf ref")
	}
	cat := idx.Catalog()
	if _, err := cat.Residues(-1); err == nil {
		t.Fatal("expected error for bad sequence index")
	}
	if NewDatabaseCatalog(db).NumSequences() != 1 {
		t.Fatal("database catalog wrong")
	}
}

// TestSearchUsesTempDirIndex smoke-tests that the search options work with a
// query file round trip (guards the examples' workflow).
func TestQueryRoundTripViaFasta(t *testing.T) {
	dir := t.TempDir()
	db, _ := seq.DatabaseFromStrings(seq.DNA, "AGTACGCCTAG")
	path := filepath.Join(dir, "q.fasta")
	qdb := seq.MustDatabase(seq.DNA, []seq.Sequence{{ID: "q1", Residues: seq.DNA.MustEncode("TACG")}})
	if err := seq.WriteFASTAFile(path, qdb, 60); err != nil {
		t.Fatal(err)
	}
	back, err := seq.ReadFASTAFile(path, seq.DNA)
	if err != nil {
		t.Fatal(err)
	}
	idx := memIndex(t, db)
	hits, err := SearchAll(idx, back.Sequence(0).Residues, Options{Scheme: unitScheme, MinScore: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Score != 4 {
		t.Fatalf("round trip search failed: %+v", hits)
	}
}

func randomDNAString(rng *rand.Rand, n int) string {
	letters := "ACGT"
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(4)]
	}
	return string(b)
}

func randomProteinString(rng *rand.Rand, n int) string {
	letters := "ARNDCQEGHILKMFPSTWYV"
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(20)]
	}
	return string(b)
}
