package core

import (
	"math/rand"
	"testing"

	"repro/internal/score"
	"repro/internal/seq"
)

// randomDB builds a random database whose sequences share enough planted
// substrings with the query source that searches produce real hit structure.
func randomDB(t *testing.T, rng *rand.Rand, a *seq.Alphabet, nSeqs, maxLen int) *seq.Database {
	t.Helper()
	letters := a.Letters()
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[rng.Intn(len(letters))]
		}
		return string(b)
	}
	motif := randStr(6 + rng.Intn(10))
	strs := make([]string, nSeqs)
	for i := range strs {
		s := randStr(1 + rng.Intn(maxLen))
		if rng.Intn(2) == 0 {
			// Plant the motif so some sequences align strongly.
			pos := rng.Intn(len(s) + 1)
			s = s[:pos] + motif + s[pos:]
		}
		strs[i] = s
	}
	db, err := seq.DatabaseFromStrings(a, strs...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func sameHits(t *testing.T, got, want []Hit, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d hits, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: hit %d differs: got %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestLiveBandEquivalence checks that the banded DP kernel reports exactly
// the hits of the exhaustive sweep (same order, scores, coordinates) while
// computing no more cells, across random databases, queries and thresholds.
func TestLiveBandEquivalence(t *testing.T) {
	schemes := map[string]struct {
		a      *seq.Alphabet
		scheme score.Scheme
	}{
		"dna":     {seq.DNA, score.MustScheme(score.UnitDNA(), -1)},
		"protein": {seq.Protein, score.MustScheme(score.ByName("PAM30"), -10)},
	}
	for name, cfg := range schemes {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			letters := cfg.a.Letters()
			for trial := 0; trial < 25; trial++ {
				db := randomDB(t, rng, cfg.a, 1+rng.Intn(12), 80)
				idx := memIndex(t, db)
				qb := make([]byte, 3+rng.Intn(20))
				for i := range qb {
					qb[i] = letters[rng.Intn(len(letters))]
				}
				query := cfg.a.MustEncode(string(qb))
				minScore := 1 + rng.Intn(12)

				var bandStats, fullStats Stats
				band, err := SearchAll(idx, query, Options{
					Scheme: cfg.scheme, MinScore: minScore, Stats: &bandStats,
				})
				if err != nil {
					t.Fatal(err)
				}
				fullSweep, err := SearchAll(idx, query, Options{
					Scheme: cfg.scheme, MinScore: minScore, Stats: &fullStats,
					DisableLiveBand: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				sameHits(t, band, fullSweep, name)
				if bandStats.ColumnsExpanded != fullStats.ColumnsExpanded {
					t.Fatalf("trial %d: band expanded %d columns, full sweep %d",
						trial, bandStats.ColumnsExpanded, fullStats.ColumnsExpanded)
				}
				if bandStats.CellsComputed > fullStats.CellsComputed {
					t.Fatalf("trial %d: band computed %d cells, more than full sweep's %d",
						trial, bandStats.CellsComputed, fullStats.CellsComputed)
				}
			}
		})
	}
}

// TestLiveBandReducesCells asserts the band actually pays off (fewer cells
// than the full sweep) on a selective search, not merely "no worse".
func TestLiveBandReducesCells(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := randomDB(t, rng, seq.Protein, 40, 200)
	idx := memIndex(t, db)
	query := seq.Protein.MustEncode("DKDGDGCITTKELGTV")
	scheme := score.MustScheme(score.ByName("PAM30"), -10)

	var bandStats, fullStats Stats
	if _, err := SearchAll(idx, query, Options{Scheme: scheme, MinScore: 25, Stats: &bandStats}); err != nil {
		t.Fatal(err)
	}
	if _, err := SearchAll(idx, query, Options{Scheme: scheme, MinScore: 25, Stats: &fullStats, DisableLiveBand: true}); err != nil {
		t.Fatal(err)
	}
	if fullStats.CellsComputed == 0 {
		t.Fatal("full sweep computed no cells; workload is degenerate")
	}
	if bandStats.CellsComputed >= fullStats.CellsComputed {
		t.Fatalf("live band computed %d cells, expected fewer than the full sweep's %d",
			bandStats.CellsComputed, fullStats.CellsComputed)
	}
	t.Logf("cells: band=%d full=%d (%.1f%% of full)", bandStats.CellsComputed,
		fullStats.CellsComputed, 100*float64(bandStats.CellsComputed)/float64(fullStats.CellsComputed))
}

// TestCompactColumnsBandSized asserts the band-aware column storage contract:
// on a selective search no viable node ever stores a full len(query)+1
// vector — the widest band requested stays strictly below the full column.
func TestCompactColumnsBandSized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := randomDB(t, rng, seq.Protein, 40, 200)
	idx := memIndex(t, db)
	query := seq.Protein.MustEncode("DKDGDGCITTKELGTV")
	scheme := score.MustScheme(score.ByName("PAM30"), -10)

	var st Stats
	if _, err := SearchAll(idx, query, Options{Scheme: scheme, MinScore: 25, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if st.MaxBandWidth <= 0 {
		t.Fatal("search stored no bands; workload is degenerate")
	}
	if st.MaxBandWidth >= len(query)+1 {
		t.Fatalf("a viable node stored a full-width column: MaxBandWidth %d >= %d",
			st.MaxBandWidth, len(query)+1)
	}
	var full Stats
	if _, err := SearchAll(idx, query, Options{Scheme: scheme, MinScore: 25, Stats: &full, DisableLiveBand: true}); err != nil {
		t.Fatal(err)
	}
	if full.MaxBandWidth != len(query)+1 {
		t.Fatalf("full sweep should store full-width columns: MaxBandWidth %d, want %d",
			full.MaxBandWidth, len(query)+1)
	}
	t.Logf("max band width: band=%d full=%d", st.MaxBandWidth, full.MaxBandWidth)
}

// TestScratchBufferOwnership is the regression test for the scratch-buffer
// aliasing hazard: expand swaps its local prev/cur pointers once per column
// and early-return paths used to leave s.prevBuf/s.curBuf out of sync with
// the locals.  Every return path now re-synchronises the fields, so after
// any search the two buffers must remain distinct, full-length arrays.
func TestScratchBufferOwnership(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		db := randomDB(t, rng, seq.DNA, 1+rng.Intn(8), 60)
		idx := memIndex(t, db)
		letters := seq.DNA.Letters()
		qb := make([]byte, 2+rng.Intn(12))
		for i := range qb {
			qb[i] = letters[rng.Intn(len(letters))]
		}
		query := seq.DNA.MustEncode(string(qb))
		s, err := newSearcher(idx, query, Options{Scheme: unitScheme, MinScore: 1 + rng.Intn(4)})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.runFromRoot(func(Hit) bool { return true }); err != nil {
			t.Fatal(err)
		}
		if len(s.prevBuf) != len(query)+2 || len(s.curBuf) != len(query)+2 {
			t.Fatalf("scratch buffers resized: prev=%d cur=%d want %d", len(s.prevBuf), len(s.curBuf), len(query)+2)
		}
		if &s.prevBuf[0] == &s.curBuf[0] {
			t.Fatal("scratch buffers alias the same array after search")
		}
	}
}
