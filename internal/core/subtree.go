package core

// Subtree sharding support: instead of building one suffix tree per database
// partition (which duplicates all near-root column work once per shard), a
// sharded engine can run the OASIS search over ONE shared index by splitting
// the search space itself — disjoint top-level subtrees go to different
// workers.  ExpandFrontier performs the near-root expansion once, producing a
// set of Seeds (subtree entry points with their DP columns precomputed), and
// SearchSeedsStream resumes the best-first search from a seed subset.  The
// near-root columns are therefore computed exactly once regardless of the
// shard count, and — absent early termination — the total work across all
// shards equals the single-searcher work cell for cell.

import "repro/internal/seq"

// SubtreeAssigner maps the one- or two-symbol prefix of a top-level subtree
// to the shard that owns it.  Prefixes are over encoded residue symbols; the
// second symbol may be seq.Terminator for a sequence that ends immediately
// after the first.  seq.PrefixPartition is the standard implementation.
type SubtreeAssigner interface {
	// NumShards returns the number of shards prefixes are assigned to.
	NumShards() int
	// Split reports whether subtrees starting with first are partitioned
	// among shards by their second symbol (true) or owned whole (false).
	Split(first byte) bool
	// Owner returns the shard owning the subtree prefix: (first) alone when
	// !Split(first) — second is ignored — and (first, second) otherwise.
	Owner(first, second byte) int
}

// Seed is one precomputed entry point into the search space: a suffix-tree
// subtree together with the live band of the DP column at its top node, as
// produced by the shared near-root expansion.  A Seed owns its band copy and
// stays valid after the frontier searcher is released.
type Seed struct {
	ref           NodeRef
	depth         int
	band          []int // live cells C[cLo..cHi]; nil for accepted seeds
	cLo, cHi      int
	maxScore      int
	bestQueryEnd  int
	bestPathDepth int
	f             int
	accepted      bool
}

// F returns the seed's priority bound: an upper bound on any score obtainable
// within the subtree (viable) or the score it will report (accepted).
func (s *Seed) F() int { return s.f }

// Accepted reports whether the seed's whole subtree is already accepted.
func (s *Seed) Accepted() bool { return s.accepted }

// Frontier is the result of the shared near-root expansion: the subtree
// seeds grouped by owning shard, the work the expansion cost (counted once,
// independent of shard count), and each shard's initial frontier bound.
type Frontier struct {
	// Seeds[s] holds the subtree entry points assigned to shard s; a shard
	// with no seeds has nothing to search.
	Seeds [][]Seed
	// Bounds[s] is the highest seed F of shard s (negInf when seedless): the
	// bound a score-ordered merger may assume before the shard's searcher
	// publishes its first own bound.
	Bounds []int
	// Stats counts the work of the shared expansion.
	Stats Stats
}

// ExpandFrontier builds the root search node and expands the near-root trunk
// of the index once, routing every surviving subtree to its owning shard per
// assign.  Trunk columns (the root's outgoing edges, plus one more level for
// prefixes the assigner splits by second symbol) are computed exactly once;
// unviable subtrees are discarded here and never reach a shard, exactly as
// the single-searcher would discard them.
//
// opts must equal the options later passed to SearchSeedsStream (MinScore,
// Scheme, DisableLiveBand) or the seeds' pruning would be inconsistent.
// opts.Stats is ignored; the expansion work is returned in Frontier.Stats.
func ExpandFrontier(idx Index, query []byte, opts Options, assign SubtreeAssigner) (*Frontier, error) {
	nShards := assign.NumShards()
	var st Stats
	opts.Stats = &st
	opts.MaxResults = 0
	s, err := newSearcher(idx, query, opts)
	if err != nil {
		return nil, err
	}
	defer s.release()

	fr := &Frontier{
		Seeds:  make([][]Seed, nShards),
		Bounds: make([]int, nShards),
	}
	for i := range fr.Bounds {
		fr.Bounds[i] = negInf
	}
	root := s.rootNode()
	if root == nil {
		fr.Stats = st
		return fr, nil
	}

	nextFallback := 0 // round-robin target for seeds with no prefix owner
	addSeed := func(shard int, n *searchNode) {
		if shard < 0 || shard >= nShards {
			shard = nextFallback % nShards
			nextFallback++
		}
		seed := Seed{
			ref:           n.ref,
			depth:         n.depth,
			cLo:           n.cLo,
			cHi:           n.cHi,
			maxScore:      n.maxScore,
			bestQueryEnd:  n.bestQueryEnd,
			bestPathDepth: n.bestPathDepth,
			f:             n.f,
			accepted:      n.tag == tagAccepted,
		}
		if n.band != nil {
			seed.band = make([]int, len(n.band))
			copy(seed.band, n.band)
		}
		fr.Seeds[shard] = append(fr.Seeds[shard], seed)
		if seed.f > fr.Bounds[shard] {
			fr.Bounds[shard] = seed.f
		}
		s.recycleNode(n)
	}

	// The trunk is at most two levels deep: the root, plus the depth-1 nodes
	// whose prefix the assigner splits by second symbol.  splitFirst tags a
	// stacked node with its (single-symbol) path so children know their
	// prefix; -1 marks the root.
	type trunkNode struct {
		n     *searchNode
		first int
	}
	stack := []trunkNode{{n: root, first: -1}}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.NodesExpanded++
		err := s.idx.VisitChildren(t.n.ref, t.n.depth, func(child NodeRef, label EdgeLabel) error {
			// Read the routing symbols before expand consumes the label
			// (Symbols invalidates previously returned slices).
			head, err := label.Symbols(0, min(2, label.Len()))
			if err != nil {
				return err
			}
			first, second := int(head[0]), -1
			if len(head) > 1 {
				second = int(head[1])
			}
			cn, err := s.expand(t.n, child, label)
			if err != nil || cn == nil {
				return err
			}
			switch {
			case t.first >= 0:
				// Child of a split depth-1 node: prefix (t.first, first).
				addSeed(assign.Owner(byte(t.first), byte(first)), cn)
			case first == int(seq.Terminator):
				// A whole-terminator subtree cannot be viable (expand stops
				// at the terminator with maxScore 0 < MinScore), so cn being
				// non-nil here would mean a malformed index; route it
				// defensively rather than lose it.
				addSeed(-1, cn)
			case !assign.Split(byte(first)):
				addSeed(assign.Owner(byte(first), 0), cn)
			case second >= 0:
				// The edge itself carries the second symbol: every suffix in
				// this subtree shares the two-symbol prefix.
				addSeed(assign.Owner(byte(first), byte(second)), cn)
			case cn.tag != tagViable:
				// A single-symbol edge to an accepted node: nothing below it
				// is ever expanded, so ownership by second symbol is moot.
				addSeed(-1, cn)
			default:
				stack = append(stack, trunkNode{n: cn, first: first})
			}
			return nil
		})
		s.recycleNode(t.n)
		if err != nil {
			return nil, err
		}
	}
	fr.Stats = st
	return fr, nil
}

// nodeFromSeed rebuilds a search node from a frontier seed, copying the band
// into searcher-owned storage.
func (s *searcher) nodeFromSeed(seed *Seed) *searchNode {
	n := s.allocNode()
	n.ref = seed.ref
	n.depth = seed.depth
	n.maxScore = seed.maxScore
	n.bestQueryEnd = seed.bestQueryEnd
	n.bestPathDepth = seed.bestPathDepth
	n.f = seed.f
	if seed.accepted {
		n.tag = tagAccepted
		return n
	}
	n.tag = tagViable
	n.cLo, n.cHi = seed.cLo, seed.cHi
	n.band = s.allocBand(len(seed.band))
	copy(n.band, seed.band)
	return n
}

// SearchSeedsStream runs the OASIS best-first search over the subtrees in
// seeds instead of from the index root, streaming hits to report in
// decreasing score order with the same frontier-bound hook as SearchStream.
// opts must match the options the seeds were expanded with.  Seeds may be
// reused across calls (each search copies the band into its own storage).
func SearchSeedsStream(idx Index, query []byte, opts Options, seeds []Seed, report func(Hit) bool, frontier func(bound int) bool) error {
	s, err := newSearcher(idx, query, opts)
	if err != nil {
		return err
	}
	defer s.release()
	s.frontier = frontier
	for i := range seeds {
		s.push(s.nodeFromSeed(&seeds[i]))
	}
	return s.run(report)
}
