package core

// Subtree sharding support: instead of building one suffix tree per database
// partition (which duplicates all near-root column work once per shard), a
// sharded engine can run the OASIS search over ONE shared index by splitting
// the search space itself — disjoint top-level subtrees go to different
// workers.  ExpandFrontier performs the near-root expansion once, producing a
// set of Seeds (subtree entry points with their DP columns precomputed), and
// SearchSeedsStream resumes the best-first search from a seed subset
// (SearchSeedsDynamic from a claim callback, for work stealing).  The
// near-root columns are therefore computed exactly once regardless of the
// shard count, and — absent early termination — the total work across all
// shards equals the single-searcher work cell for cell.

import "repro/internal/seq"

// SubtreeAssigner maps the one- or two-symbol prefix of a top-level subtree
// to the shard that owns it.  Prefixes are over encoded residue symbols; the
// second symbol may be seq.Terminator for a sequence that ends immediately
// after the first.  seq.PrefixPartition is the standard implementation.
type SubtreeAssigner interface {
	// NumShards returns the number of shards prefixes are assigned to.
	NumShards() int
	// Split reports whether subtrees starting with first are partitioned
	// among shards by their second symbol (true) or owned whole (false).
	Split(first byte) bool
	// Owner returns the shard owning the subtree prefix: (first) alone when
	// !Split(first) — second is ignored — and (first, second) otherwise.
	Owner(first, second byte) int
}

// PrefixCoster is an optional SubtreeAssigner extension exposing the exact
// per-prefix-group suffix counts the partitioner derived: work stealers use
// them to pick the victim shard with the most estimated work remaining.
type PrefixCoster interface {
	// PrefixCost returns the number of indexed suffixes in the prefix group:
	// every suffix starting with first when second < 0, or with the
	// two-symbol prefix (first, second) otherwise (second may be
	// seq.Terminator).
	PrefixCost(first byte, second int) int64
}

// Seed is one precomputed entry point into the search space: a suffix-tree
// subtree together with the live band of the DP column at its top node, as
// produced by the shared near-root expansion.  A Seed owns its band copy and
// stays valid after the frontier searcher is released.
type Seed struct {
	ref           NodeRef
	depth         int
	band          []int32 // live cells C[cLo..cHi]; nil for accepted seeds
	cLo, cHi      int
	maxScore      int
	bestQueryEnd  int
	bestPathDepth int
	f             int
	cost          int64
	accepted      bool
}

// F returns the seed's priority bound: an upper bound on any score obtainable
// within the subtree (viable) or the score it will report (accepted).
func (s *Seed) F() int { return s.f }

// NewTestSeed builds a bare seed carrying only a priority bound and a work
// estimate — enough for scheduling-layer tests (internal/shard's steal pool)
// that never hand the seed to a searcher.
func NewTestSeed(f int, cost int64) Seed { return Seed{f: f, cost: cost} }

// Accepted reports whether the seed's whole subtree is already accepted.
func (s *Seed) Accepted() bool { return s.accepted }

// Cost estimates the seed's remaining work as the suffix count of its prefix
// group (when the assigner implements PrefixCoster; 1 otherwise), so a work
// stealer can order victims by estimated backlog.
func (s *Seed) Cost() int64 {
	if s.cost > 0 {
		return s.cost
	}
	return 1
}

// Frontier is the result of the shared near-root expansion: the subtree
// seeds grouped by owning shard, the work the expansion cost (counted once,
// independent of shard count), and each shard's initial frontier bound.
type Frontier struct {
	// Seeds[s] holds the subtree entry points assigned to shard s; a shard
	// with no seeds has nothing to search.
	Seeds [][]Seed
	// Bounds[s] is the highest seed F of shard s (negInf when seedless): the
	// bound a score-ordered merger may assume before the shard's searcher
	// publishes its first own bound.
	Bounds []int
	// Stats counts the work of the shared expansion.
	Stats Stats
}

// ExpandFrontier builds the root search node and expands the near-root trunk
// of the index once, routing every surviving subtree to its owning shard per
// assign.  Trunk columns (the root's outgoing edges, plus one more level for
// prefixes the assigner splits by second symbol) are computed exactly once;
// unviable subtrees are discarded here and never reach a shard, exactly as
// the single-searcher would discard them.
//
// opts must equal the options later passed to SearchSeedsStream (MinScore,
// Scheme, DisableLiveBand) or the seeds' pruning would be inconsistent.
// opts.Stats is ignored; the expansion work is returned in Frontier.Stats.
func ExpandFrontier(idx Index, query []byte, opts Options, assign SubtreeAssigner) (*Frontier, error) {
	nShards := assign.NumShards()
	var st Stats
	opts.Stats = &st
	opts.MaxResults = 0
	s, err := newSearcher(idx, query, opts)
	if err != nil {
		return nil, err
	}
	defer s.release()
	coster, _ := assign.(PrefixCoster)

	fr := &Frontier{
		Seeds:  make([][]Seed, nShards),
		Bounds: make([]int, nShards),
	}
	for i := range fr.Bounds {
		fr.Bounds[i] = negInf
	}
	rootID, _, ok := s.rootNode()
	if !ok {
		fr.Stats = st
		return fr, nil
	}

	nextFallback := 0 // round-robin target for seeds with no prefix owner
	addSeed := func(shard int, r expandResult, cost int64) {
		if shard < 0 || shard >= nShards {
			shard = nextFallback % nShards
			nextFallback++
		}
		var seed Seed
		if r.accepted {
			id := r.id
			seed = Seed{
				ref:           s.acc.ref[id],
				maxScore:      int(s.acc.score[id]),
				bestQueryEnd:  int(s.acc.qEnd[id]),
				bestPathDepth: int(s.acc.pDep[id]),
				f:             r.f,
				accepted:      true,
			}
			s.acc.release(id)
		} else {
			id := r.id
			ns := s.nodes
			seed = Seed{
				ref:           ns.ref[id],
				depth:         int(ns.depth[id]),
				cLo:           int(ns.cLo[id]),
				cHi:           int(ns.cHi[id]),
				maxScore:      int(ns.maxSc[id]),
				bestQueryEnd:  int(ns.qEnd[id]),
				bestPathDepth: int(ns.pDep[id]),
				f:             r.f,
			}
			seed.band = make([]int32, len(ns.band[id]))
			copy(seed.band, ns.band[id])
			s.releaseViable(id)
		}
		seed.cost = cost
		fr.Seeds[shard] = append(fr.Seeds[shard], seed)
		if seed.f > fr.Bounds[shard] {
			fr.Bounds[shard] = seed.f
		}
	}
	prefixCost := func(first byte, second int) int64 {
		if coster == nil {
			return 0
		}
		return coster.PrefixCost(first, second)
	}

	// The trunk is at most two levels deep: the root, plus the depth-1 nodes
	// whose prefix the assigner splits by second symbol.  splitFirst tags a
	// stacked node with its (single-symbol) path so children know their
	// prefix; -1 marks the root.
	type trunkNode struct {
		id    int32
		first int
	}
	stack := []trunkNode{{id: rootID, first: -1}}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.NodesExpanded++
		err := s.idx.VisitChildren(s.nodes.ref[t.id], int(s.nodes.depth[t.id]), func(child NodeRef, label EdgeLabel) error {
			// Read the routing symbols before expand consumes the label
			// (Symbols invalidates previously returned slices).
			head, err := label.Symbols(0, min(2, label.Len()))
			if err != nil {
				return err
			}
			first, second := int(head[0]), -1
			if len(head) > 1 {
				second = int(head[1])
			}
			r, err := s.expand(t.id, child, label)
			if err != nil || !r.ok {
				return err
			}
			switch {
			case t.first >= 0:
				// Child of a split depth-1 node: prefix (t.first, first).
				addSeed(assign.Owner(byte(t.first), byte(first)), r, prefixCost(byte(t.first), first))
			case first == int(seq.Terminator):
				// A whole-terminator subtree cannot be viable (expand stops
				// at the terminator with maxScore 0 < MinScore), so r being
				// ok here would mean a malformed index; route it
				// defensively rather than lose it.
				addSeed(-1, r, prefixCost(byte(first), -1))
			case !assign.Split(byte(first)):
				addSeed(assign.Owner(byte(first), 0), r, prefixCost(byte(first), -1))
			case second >= 0:
				// The edge itself carries the second symbol: every suffix in
				// this subtree shares the two-symbol prefix.
				addSeed(assign.Owner(byte(first), byte(second)), r, prefixCost(byte(first), second))
			case r.accepted:
				// A single-symbol edge to an accepted node: nothing below it
				// is ever expanded, so ownership by second symbol is moot.
				addSeed(-1, r, prefixCost(byte(first), -1))
			default:
				stack = append(stack, trunkNode{id: r.id, first: first})
			}
			return nil
		})
		s.releaseViable(t.id)
		if err != nil {
			return nil, err
		}
	}
	fr.Stats = st
	return fr, nil
}

// pushSeed rebuilds a search node from a frontier seed (copying the band
// into searcher-owned storage) and pushes it onto the priority queue.
func (s *searcher) pushSeed(seed *Seed) {
	if seed.accepted {
		id := s.acc.alloc()
		s.acc.ref[id] = seed.ref
		s.acc.score[id] = int32(seed.maxScore)
		s.acc.qEnd[id] = int32(seed.bestQueryEnd)
		s.acc.pDep[id] = int32(seed.bestPathDepth)
		s.push(seed.f, true, id)
		return
	}
	ns := s.nodes
	id := ns.alloc()
	ns.ref[id] = seed.ref
	ns.depth[id] = int32(seed.depth)
	ns.cLo[id] = int32(seed.cLo)
	ns.cHi[id] = int32(seed.cHi)
	ns.maxSc[id] = int32(seed.maxScore)
	ns.qEnd[id] = int32(seed.bestQueryEnd)
	ns.pDep[id] = int32(seed.bestPathDepth)
	band := s.allocBand(len(seed.band))
	copy(band, seed.band)
	ns.band[id] = band
	s.push(seed.f, false, id)
}

// SearchSeedsStream runs the OASIS best-first search over the subtrees in
// seeds instead of from the index root, streaming hits to report in
// decreasing score order with the same frontier-bound hook as SearchStream.
// opts must match the options the seeds were expanded with.  Seeds may be
// reused across calls (each search copies the band into its own storage).
func SearchSeedsStream(idx Index, query []byte, opts Options, seeds []Seed, report func(Hit) bool, frontier func(bound int) bool) error {
	s, err := newSearcher(idx, query, opts)
	if err != nil {
		return err
	}
	defer s.release()
	s.frontier = frontier
	for i := range seeds {
		s.pushSeed(&seeds[i])
	}
	return s.run(report)
}

// SearchSeedsDynamic is SearchSeedsStream pulling its seeds on demand: before
// every queue pop, claim is offered the current best queue bound (the top
// entry's f, or score.NegInf when the queue is empty) and may hand back one
// more seed to push; the search proceeds once it returns nil and finishes
// when both the queue and the claim source are exhausted.  Work stealing
// between prefix shards is built on this (internal/shard): a shared pool
// serves each worker its own shard's seeds in decreasing-f order and lets
// idle workers claim seeds stranded on busy shards.
//
// claim is called from the searching goroutine; it may block but must not
// call back into this search.
func SearchSeedsDynamic(idx Index, query []byte, opts Options, claim func(topF int) *Seed, report func(Hit) bool, frontier func(bound int) bool) error {
	s, err := newSearcher(idx, query, opts)
	if err != nil {
		return err
	}
	defer s.release()
	s.frontier = frontier
	s.claim = claim
	return s.run(report)
}
