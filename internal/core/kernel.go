package core

// The band kernel: one DP column per suffix-tree edge symbol.
//
// # Recurrence
//
// For edge symbol t at path depth j, cell i of the new column is the best
// local-alignment score ending at query position i and path position j:
//
//	C[j][i] = max( C[j-1][i-1] + score(q[i], t),   substitution
//	               C[j]  [i-1] + gap,              insertion (up, same column)
//	               C[j-1][i]   + gap )             deletion  (left, prev column)
//
// followed by the paper's pruning (Section 3.2): a cell dies (becomes the
// absorbing sentinel negInf) when
//
//	C[j][i] <= 0                          a fresh start elsewhere beats it
//	C[j][i] + h[i] <= maxScore            it can never beat the path's best
//	C[j][i] + h[i] <  minScore            it can never reach the threshold
//
// where h is the admissible heuristic (best possible score of the query
// remainder).  Pruning leaves a contiguous live interval [lo, hi]; every
// cell outside it is negInf and only the insertion chain immediately above
// hi can revive anything, so a column sweep needs to visit exactly
//
//	[max(lo,1), min(hi+1, m)]   then the insertion chain hi+2.. while alive.
//
// # Branch-free sweep (sweepColumnFast)
//
// The reference sweep (sweepColumnRef, the original kernel, selected by
// Options.ReferenceKernel) guards every read against the band bounds and
// guards every add against the negInf sentinel (addScore).  The fast sweep
// removes all of those per-cell branches:
//
//   - Sentinel padding: prev[lo-1] and prev[hi+1] are set to negInf once per
//     column, so the substitution and deletion reads need no bound checks —
//     out-of-band reads see the sentinel.  (The column buffers are m+2 cells
//     for the hi = m case.)
//   - Plain adds: negInf is -(1<<29), far below any live score but far above
//     the int32 minimum, so negInf + score stays hugely negative without
//     wrapping and the v <= 0 prune normalises it back to exactly negInf.
//     addScore's guard branch disappears.  newSearcher caps the heuristic
//     prefix sum (maxKernelScore) so no sum can overflow int32.
//   - The 3-way max and the prune compile to conditional moves (each branch
//     arm only assigns), not jumps.
//   - The per-column profile row profT[sym*m:] is contiguous (the profile is
//     stored transposed), so the substitution lookups walk one cache line
//     instead of striding by the alphabet width.
//
// Both sweeps visit exactly the same cells in the same order and count them
// identically (CellsComputed, ColumnsExpanded, MaxBandWidth and the band
// intervals are equal cell for cell); FuzzKernelEquivalence locks this down.

// colResult is one column sweep's outcome, consumed by searcher.expand.
type colResult struct {
	// curLo/curHi bound the new column's live cells (curLo = m+1, curHi = -1
	// when the column died entirely).
	curLo, curHi int32
	// colBest is the column's best f = v + h[i] over live cells (negInf when
	// none): the node's new priority bound.
	colBest int32
	// maxScore/bestQEnd carry the running path best through the column;
	// bestQEnd is only meaningful when maxScore improved on the input.
	maxScore int32
	bestQEnd int32
	// cells is how many cells the sweep visited (dead break cell included).
	cells int32
}

// negInf32 is the pruned-score sentinel in the kernels' int32 domain.
const negInf32 = int32(negInf)

// sweepColumnRef is the original scalar column sweep, kept verbatim as the
// reference kernel (Options.ReferenceKernel) for differential testing and
// ablation: band-bound guards on every read, addScore sentinel guards on
// every add, branchy bookkeeping.
//
//oasis:hotpath
func sweepColumnRef(prev, cur []int32, prof, h []int32, width, sym, plo, phi, m int, gap, maxScore, minScore int32, full bool) colResult {
	r := colResult{curLo: int32(m + 1), curHi: -1, colBest: negInf32, maxScore: maxScore, bestQEnd: -1}
	if full {
		cur[0] = negInf32
	}
	upCell := negInf32
	start := plo
	if start < 1 {
		start = 1
	}
	for i := start; i <= m; i++ {
		v := negInf32
		if i-1 >= plo && i-1 <= phi {
			v = addScore32(prev[i-1], prof[(i-1)*width+sym]) // substitution
		}
		if up := addScore32(upCell, gap); up > v { // insertion: consume a query symbol
			v = up
		}
		if i <= phi { // i >= plo always holds here
			if left := addScore32(prev[i], gap); left > v { // deletion: consume a target symbol
				v = left
			}
		}
		// Alignment pruning (paper Section 3.2, cases 1-3).
		if v <= 0 || v+h[i] <= r.maxScore || v+h[i] < minScore {
			v = negInf32
		}
		cur[i] = v
		r.cells++
		upCell = v
		if v != negInf32 {
			if r.curLo > int32(m) {
				r.curLo = int32(i)
			}
			r.curHi = int32(i)
			if v > r.maxScore {
				r.maxScore = v
				r.bestQEnd = int32(i)
			}
			if v+h[i] > r.colBest {
				r.colBest = v + h[i]
			}
		} else if i > phi && !full {
			// Past the previous column's band only the insertion chain can
			// stay alive; once it dies the rest of the column is negInf and
			// need not be touched.
			break
		}
	}
	return r
}

// addScore32 adds a matrix/gap score to a cell value, keeping negInf
// absorbing (reference kernel only; the fast kernel uses plain adds).
//
//oasis:hotpath
func addScore32(v, delta int32) int32 {
	if v <= negInf32 {
		return negInf32
	}
	return v + delta
}

// sweepEdgeFast status codes.
const (
	sweepAlive  = iota // every symbol consumed; the node is still viable
	sweepClosed        // maxScore >= the column's best f: the subtree closed out
	sweepDead          // the column's best f < minScore: unviable
)

// edgeResult is one sweepEdgeFast outcome, consumed by searcher.expandFast.
type edgeResult struct {
	// cells counts visited cells; columns how many symbols were consumed
	// (the stopping column included, a terminator excluded).
	cells   int64
	columns int32
	// plo/phi bound the final column's live cells (sweepAlive only).
	plo, phi int32
	// maxScore carries the running path best through the swept columns;
	// bestQEnd/bestCol say where it last improved (bestCol is 1-based within
	// this call; 0 = no improvement, bestQEnd then meaningless).
	maxScore int32
	bestQEnd int32
	bestCol  int32
	// colBest is the final column's best f over live cells: the node's new
	// priority bound while it stays viable (negInf if columns == 0).
	colBest int32
	// status is sweepAlive, sweepClosed or sweepDead.
	status int32
	// terminator reports that a sequence terminator stopped the edge.
	terminator bool
	// swapped reports whether the final column's cells ended up in the
	// caller's cur buffer (odd number of completed columns).
	swapped bool
}

// sweepEdgeFast is the branch-free kernel: it sweeps one column per symbol
// of syms (an edge-label chunk), stopping early when the node closes out
// (sweepClosed), dies (sweepDead) or a terminator symbol is reached.  Moving
// the per-column loop into the kernel amortises the call and bookkeeping
// overhead that dominates at the workload's typical ~3-cell band width.  See
// the package comment above for the per-column derivation; profT is the
// transposed profile (profT[sym*m + i-1] scores query position i).
func sweepEdgeFast(prev, cur, profT, h []int32, width int, syms []byte, plo, phi, m int, gap, maxScore, minScore int32, full bool) edgeResult {
	r := edgeResult{maxScore: maxScore, colBest: negInf32}
	for ci := 0; ci < len(syms); ci++ {
		sym := int(syms[ci])
		if sym >= width {
			r.terminator = true
			break
		}
		profCol := profT[sym*m : sym*m+m]
		if full {
			cur[0] = negInf32
		}
		// Sentinel padding: out-of-band reads below resolve to negInf without
		// per-cell bound checks.  prev has m+2 cells, so phi+1 is valid.
		if plo > 0 {
			prev[plo-1] = negInf32
		}
		prev[phi+1] = negInf32
		start := plo
		if start < 1 {
			start = 1
		}
		// The always-visited range of the reference sweep: it never breaks at
		// i <= phi and always computes (and counts) the dead break cell phi+1.
		end := phi + 1
		if end > m {
			end = m
		}
		r.cells += int64(end - start + 1)
		colStartMax := r.maxScore
		colBest := negInf32
		upCell := negInf32
		curLo := int32(m + 1)
		curHi := int32(-1)
		_ = prev[end] // hoist the bound check: reads below stay <= end <= phi+1
		for i := start; i <= end; i++ {
			v := prev[i-1] + profCol[i-1]
			if left := prev[i] + gap; left > v {
				v = left
			}
			if up := upCell + gap; up > v {
				v = up
			}
			f := v + h[i]
			if v <= 0 || f <= r.maxScore || f < minScore {
				v = negInf32
			}
			cur[i] = v
			upCell = v
			if v != negInf32 {
				if curLo > int32(m) {
					curLo = int32(i)
				}
				curHi = int32(i)
				if v > r.maxScore {
					r.maxScore = v
					r.bestQEnd = int32(i)
				}
				if f > colBest {
					colBest = f
				}
			}
		}
		// Insertion-chain tail: past phi+1 only the chain above the band can
		// be alive.  Entered exactly when the reference sweep would not have
		// broken at phi+1 (full-sweep columns have end = phi = m; never taken).
		if end == phi+1 && upCell != negInf32 {
			for i := end + 1; i <= m; i++ {
				v := upCell + gap
				f := v + h[i]
				if v <= 0 || f <= r.maxScore || f < minScore {
					v = negInf32
				}
				cur[i] = v
				upCell = v
				r.cells++
				if v == negInf32 {
					break
				}
				curHi = int32(i)
				if curLo > int32(m) {
					curLo = int32(i)
				}
				if v > r.maxScore {
					r.maxScore = v
					r.bestQEnd = int32(i)
				}
				if f > colBest {
					colBest = f
				}
			}
		}
		r.columns++
		r.colBest = colBest
		if r.maxScore > colStartMax {
			r.bestCol = r.columns
		}
		// Accept / prune decisions, exactly as the reference path makes them
		// after each column.
		if r.maxScore >= colBest {
			r.status = sweepClosed
			return r
		}
		if colBest < minScore {
			r.status = sweepDead
			return r
		}
		prev, cur = cur, prev
		r.swapped = !r.swapped
		plo, phi = int(curLo), int(curHi)
		if full {
			plo, phi = 0, m
		}
	}
	r.status = sweepAlive
	r.plo, r.phi = int32(plo), int32(phi)
	return r
}
