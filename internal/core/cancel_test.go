package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/score"
	"repro/internal/seq"
)

// cancelTestWorkload builds a protein workload whose hit-less sweep (minScore
// just above the best achievable score) still expands plenty of DP columns —
// the regime where pre-poll searches ignored their context entirely.
func cancelTestWorkload(t *testing.T) (*MemoryIndex, []byte, score.Scheme, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	letters := seq.Protein.Letters()
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[rng.Intn(len(letters))]
		}
		return string(b)
	}
	// Embed MUTATED copies of the motif only: near-misses force deep DP
	// exploration, while the clean query never reaches a perfect-match score
	// — so minScore can sit strictly between the best achievable score and
	// the root heuristic bound, keeping the hit-less sweep busy.
	motif := randStr(16)
	mutate := func(s string) string {
		b := []byte(s)
		for k := 0; k < 4; k++ {
			b[rng.Intn(len(b))] = letters[rng.Intn(len(letters))]
		}
		return string(b)
	}
	strs := make([]string, 80)
	for i := range strs {
		s := randStr(150 + rng.Intn(100))
		pos := rng.Intn(len(s))
		strs[i] = s[:pos] + mutate(motif) + s[pos:]
	}
	db, err := seq.DatabaseFromStrings(seq.Protein, strs...)
	if err != nil {
		t.Fatal(err)
	}
	idx := memIndex(t, db)
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	query := seq.Protein.MustEncode(motif)

	// The best achievable score caps what any sweep can report; minScore
	// one above it makes every search hit-less.
	top := 0
	hits, err := SearchAll(idx, query, Options{Scheme: scheme, MinScore: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) > 0 {
		top = hits[0].Score
	}
	return idx, query, scheme, top + 1
}

// TestContextCancelsHitlessSearchPromptly pins the fix for cancellation only
// being observed at hit callbacks: a search with a cancelled context must
// return the context error within CancelPollColumns DP columns even when it
// never reports a hit.
func TestContextCancelsHitlessSearchPromptly(t *testing.T) {
	idx, query, scheme, minScore := cancelTestWorkload(t)

	var base Stats
	err := Search(idx, query, Options{Scheme: scheme, MinScore: minScore, Stats: &base},
		func(Hit) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if base.SequencesReported != 0 {
		t.Fatalf("workload is not hit-less: %d sequences reported", base.SequencesReported)
	}
	if base.ColumnsExpanded < 200 {
		t.Fatalf("workload too small to be meaningful: only %d columns expanded", base.ColumnsExpanded)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var st Stats
	err = Search(idx, query, Options{
		Scheme: scheme, MinScore: minScore, Stats: &st,
		Context: ctx, CancelPollColumns: 16,
	}, func(Hit) bool { return true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled hit-less search returned %v, want context.Canceled", err)
	}
	if st.SequencesReported != 0 {
		t.Fatalf("cancelled search reported %d sequences", st.SequencesReported)
	}
	// The first poll fires within 16 columns; allow generous slack for the
	// abort path's bookkeeping, still orders of magnitude under the full run.
	if st.ColumnsExpanded > 64 {
		t.Fatalf("cancelled search expanded %d columns (full run: %d), want <= 64",
			st.ColumnsExpanded, base.ColumnsExpanded)
	}
}

// TestContextPollingDoesNotChangeResults runs the same query with and without
// an (uncancelled) context at the tightest poll interval and requires
// byte-identical hit streams and work counters.
func TestContextPollingDoesNotChangeResults(t *testing.T) {
	idx, query, scheme, _ := cancelTestWorkload(t)
	opts := Options{Scheme: scheme, MinScore: 20}
	var plainStats Stats
	opts.Stats = &plainStats
	plain, err := SearchAll(idx, query, opts)
	if err != nil {
		t.Fatal(err)
	}
	var polledStats Stats
	polled, err := SearchAll(idx, query, Options{
		Scheme: scheme, MinScore: 20, Stats: &polledStats,
		Context: context.Background(), CancelPollColumns: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(polled) {
		t.Fatalf("polling changed the hit count: %d vs %d", len(plain), len(polled))
	}
	for i := range plain {
		if plain[i] != polled[i] {
			t.Fatalf("hit %d differs: %+v vs %+v", i, plain[i], polled[i])
		}
	}
	if !reflect.DeepEqual(plainStats, polledStats) {
		t.Fatalf("polling changed the work counters:\n plain: %+v\npolled: %+v", plainStats, polledStats)
	}
	// Disabling polling with a context set must also be honoured.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	disabled, err := SearchAll(idx, query, Options{
		Scheme: scheme, MinScore: 20,
		Context: ctx, CancelPollColumns: -1,
	})
	if err != nil {
		t.Fatalf("polling-disabled search returned %v", err)
	}
	if len(disabled) != len(plain) {
		t.Fatalf("polling-disabled search returned %d hits, want %d", len(disabled), len(plain))
	}
}
