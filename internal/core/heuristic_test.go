package core

import (
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/score"
)

// TestHeuristicIsAdmissible verifies the A* admissibility property the
// correctness argument of Section 3 rests on: H[i] is an upper bound on the
// optimal local-alignment score between the query remainder Q[i+1..m] and
// ANY target sequence.  If this ever failed, OASIS could report results out
// of order or miss the optimum for a sequence.
func TestHeuristicIsAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	schemes := []score.Scheme{
		score.MustScheme(score.BLOSUM62(), -8),
		score.MustScheme(score.PAM30(), -10),
		score.MustScheme(score.UnitDNA(), -1),
	}
	for _, sch := range schemes {
		alphaN := 20
		if sch.Matrix.Alphabet().Size() < 20 {
			alphaN = 4
		}
		for trial := 0; trial < 30; trial++ {
			m := 2 + rng.Intn(20)
			query := make([]byte, m)
			for i := range query {
				query[i] = byte(rng.Intn(alphaN))
			}
			h := HeuristicVector(query, sch.Matrix)
			if h[m] != 0 {
				t.Fatalf("H[m] = %d, want 0", h[m])
			}
			for i := 0; i < m; i++ {
				if h[i] < h[i+1] {
					t.Fatalf("heuristic not monotone: H[%d]=%d < H[%d]=%d", i, h[i], i+1, h[i+1])
				}
			}
			// Random targets must never beat the bound for any suffix of
			// the query.
			for k := 0; k < 5; k++ {
				target := make([]byte, 5+rng.Intn(60))
				for i := range target {
					target[i] = byte(rng.Intn(alphaN))
				}
				for i := 0; i <= m; i++ {
					opt := align.Score(query[i:], target, sch, nil)
					if opt > h[i] {
						t.Fatalf("heuristic not admissible: H[%d]=%d but S-W found %d (%s)",
							i, h[i], opt, sch.Matrix.Name())
					}
				}
			}
		}
	}
}

// TestHeuristicTightForExactMatch checks that for a query aligned against
// itself (no gaps, perfect matches on the diagonal) the heuristic bound at
// position 0 is achieved exactly when every residue's best substitution is
// itself (true for every built-in protein matrix).
func TestHeuristicTightForExactMatch(t *testing.T) {
	sch := score.MustScheme(score.BLOSUM62(), -8)
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 20; trial++ {
		m := 3 + rng.Intn(15)
		query := make([]byte, m)
		for i := range query {
			query[i] = byte(rng.Intn(20))
		}
		h := HeuristicVector(query, sch.Matrix)
		self := align.Score(query, query, sch, nil)
		if self > h[0] {
			t.Fatalf("self alignment %d exceeds heuristic %d", self, h[0])
		}
		// For BLOSUM62 every standard residue's row maximum is its own
		// diagonal entry, so the bound is exactly the self-alignment score.
		if self != h[0] {
			t.Fatalf("heuristic %d not tight for self alignment %d", h[0], self)
		}
	}
}
