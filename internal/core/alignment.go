package core

import (
	"fmt"

	"repro/internal/align"
	"repro/internal/score"
)

// RecoverAlignment reconstructs the full alignment (coordinates and
// operations) for a hit reported by Search, by running a bounded
// Smith-Waterman traceback against the hit's sequence.  Because OASIS
// reports each sequence's optimal score, the recovered alignment has exactly
// the hit's score.
func RecoverAlignment(idx Index, query []byte, sch score.Scheme, h Hit) (align.Alignment, error) {
	return RecoverAlignmentCatalog(idx.Catalog(), query, sch, h)
}

// RecoverAlignmentCatalog is RecoverAlignment against a bare sequence
// catalog; engines without a single Index (the sharded engine) use it with
// the hit's global sequence index.
func RecoverAlignmentCatalog(cat Catalog, query []byte, sch score.Scheme, h Hit) (align.Alignment, error) {
	if h.SeqIndex < 0 || h.SeqIndex >= cat.NumSequences() {
		return align.Alignment{}, fmt.Errorf("core: hit sequence index %d out of range", h.SeqIndex)
	}
	res, err := cat.Residues(h.SeqIndex)
	if err != nil {
		return align.Alignment{}, err
	}
	a, err := align.Align(query, res, sch)
	if err != nil {
		return align.Alignment{}, err
	}
	if a.Score != h.Score {
		return align.Alignment{}, fmt.Errorf("core: recovered alignment score %d != reported score %d for %s",
			a.Score, h.Score, h.SeqID)
	}
	a.SeqIndex = h.SeqIndex
	a.SeqID = h.SeqID
	a.EValue = h.EValue
	return a, nil
}
