package core

import (
	"math/rand"
	"testing"

	"repro/internal/score"
	"repro/internal/seq"
)

// testAssigner routes subtree prefixes to shards by a deterministic hash,
// splitting every even first symbol by its second symbol so both routing
// depths are exercised.
type testAssigner struct{ n int }

func (a testAssigner) NumShards() int        { return a.n }
func (a testAssigner) Split(first byte) bool { return first%2 == 0 }
func (a testAssigner) Owner(first, second byte) int {
	if a.Split(first) {
		return (int(first)*31 + int(second) + 7) % a.n
	}
	return int(first) % a.n
}

// TestExpandFrontierSeededSearchEquivalence is the subtree-sharding core
// contract: expanding the near-root trunk once and searching all resulting
// seeds in one pass must report exactly the baseline hits while doing exactly
// the baseline amount of column work (frontier + seed search, no duplicated
// near-root columns).
func TestExpandFrontierSeededSearchEquivalence(t *testing.T) {
	cases := map[string]struct {
		a      *seq.Alphabet
		scheme score.Scheme
	}{
		"dna":     {seq.DNA, score.MustScheme(score.UnitDNA(), -1)},
		"protein": {seq.Protein, score.MustScheme(score.ByName("PAM30"), -10)},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(2026))
			letters := cfg.a.Letters()
			strictTrials := 0
			for trial := 0; trial < 30; trial++ {
				db := randomDB(t, rng, cfg.a, 1+rng.Intn(14), 90)
				idx := memIndex(t, db)
				qb := make([]byte, 3+rng.Intn(16))
				for i := range qb {
					qb[i] = letters[rng.Intn(len(letters))]
				}
				query := cfg.a.MustEncode(string(qb))
				opts := Options{Scheme: cfg.scheme, MinScore: 1 + rng.Intn(10)}

				var baseStats Stats
				baseOpts := opts
				baseOpts.Stats = &baseStats
				baseline, err := SearchAll(idx, query, baseOpts)
				if err != nil {
					t.Fatal(err)
				}

				nShards := 1 + rng.Intn(5)
				fr, err := ExpandFrontier(idx, query, opts, testAssigner{n: nShards})
				if err != nil {
					t.Fatal(err)
				}

				// All seeds in one pass: identical hit multiset, identical
				// total work.
				var all []Seed
				for _, group := range fr.Seeds {
					all = append(all, group...)
				}
				var seedStats Stats
				seedOpts := opts
				seedOpts.Stats = &seedStats
				var seeded []Hit
				err = SearchSeedsStream(idx, query, seedOpts, all, func(h Hit) bool {
					seeded = append(seeded, h)
					return true
				}, nil)
				if err != nil {
					t.Fatal(err)
				}
				checkHitMultiset(t, trial, seeded, baseline)
				// When every database sequence is reported, the baseline
				// stops mid-queue and skips work the frontier has already
				// done up front, so exact work equality only holds when the
				// search runs to queue exhaustion.
				if len(baseline) < db.NumSequences() {
					strictTrials++
					total := fr.Stats
					total.Add(seedStats)
					if total.ColumnsExpanded != baseStats.ColumnsExpanded {
						t.Fatalf("trial %d: frontier+seeds expanded %d columns, baseline %d",
							trial, total.ColumnsExpanded, baseStats.ColumnsExpanded)
					}
					if total.CellsComputed != baseStats.CellsComputed {
						t.Fatalf("trial %d: frontier+seeds computed %d cells, baseline %d",
							trial, total.CellsComputed, baseStats.CellsComputed)
					}
					if total.NodesExpanded != baseStats.NodesExpanded {
						t.Fatalf("trial %d: frontier+seeds expanded %d nodes, baseline %d",
							trial, total.NodesExpanded, baseStats.NodesExpanded)
					}
				}

				// Per-shard passes: the union of per-sequence bests across
				// disjoint shard groups must equal the baseline's, proving
				// the frontier covers the whole search space exactly once.
				best := map[int]int{}
				for s, group := range fr.Seeds {
					groupOpts := opts
					err := SearchSeedsStream(idx, query, groupOpts, group, func(h Hit) bool {
						if h.Score > best[h.SeqIndex] {
							best[h.SeqIndex] = h.Score
						}
						return true
					}, nil)
					if err != nil {
						t.Fatalf("trial %d shard %d: %v", trial, s, err)
					}
					for i := range group {
						if group[i].F() < opts.MinScore {
							t.Fatalf("trial %d shard %d: seed with bound %d below MinScore %d survived",
								trial, s, group[i].F(), opts.MinScore)
						}
					}
					if len(group) > 0 && fr.Bounds[s] < opts.MinScore {
						t.Fatalf("trial %d shard %d: bound %d below MinScore with %d seeds",
							trial, s, fr.Bounds[s], len(group))
					}
				}
				wantBest := map[int]int{}
				for _, h := range baseline {
					wantBest[h.SeqIndex] = h.Score
				}
				if len(best) != len(wantBest) {
					t.Fatalf("trial %d: shard union reported %d sequences, baseline %d",
						trial, len(best), len(wantBest))
				}
				for si, sc := range wantBest {
					if best[si] != sc {
						t.Fatalf("trial %d: sequence %d best %d across shards, baseline %d",
							trial, si, best[si], sc)
					}
				}
			}
			if strictTrials == 0 {
				t.Fatal("no trial exercised the exact-work assertion; workload is degenerate")
			}
		})
	}
}

// checkHitMultiset compares two hit streams as (SeqIndex, Score) multisets
// and requires both to be non-increasing in score (equal-score hits may
// interleave differently when the queue seeding order differs).
func checkHitMultiset(t *testing.T, trial int, got, want []Hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trial %d: got %d hits, want %d", trial, len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("trial %d: score order violated at %d", trial, i)
		}
	}
	set := map[[2]int]int{}
	for _, h := range want {
		set[[2]int{h.SeqIndex, h.Score}]++
	}
	for _, h := range got {
		k := [2]int{h.SeqIndex, h.Score}
		if set[k] == 0 {
			t.Fatalf("trial %d: hit %+v not in baseline", trial, h)
		}
		set[k]--
	}
}

// TestExpandFrontierEmpty pins the degenerate cases: an unreachable MinScore
// yields an all-empty frontier, and searching zero seeds reports nothing.
func TestExpandFrontierEmpty(t *testing.T) {
	db, err := seq.DatabaseFromStrings(seq.DNA, "ACGTACGT", "TTTT")
	if err != nil {
		t.Fatal(err)
	}
	idx := memIndex(t, db)
	query := seq.DNA.MustEncode("ACG")
	opts := Options{Scheme: score.MustScheme(score.UnitDNA(), -1), MinScore: 100}
	fr, err := ExpandFrontier(idx, query, opts, testAssigner{n: 3})
	if err != nil {
		t.Fatal(err)
	}
	for s, group := range fr.Seeds {
		if len(group) != 0 {
			t.Fatalf("shard %d has %d seeds for an unreachable MinScore", s, len(group))
		}
	}
	err = SearchSeedsStream(idx, query, opts, nil, func(Hit) bool {
		t.Fatal("seedless search reported a hit")
		return false
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
