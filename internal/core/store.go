package core

// Structure-of-arrays search-node storage.
//
// The best-first loop used to traffic in *searchNode pointers: a ~120-byte
// struct per live node, a pointer heap whose comparisons chased two cache
// lines per level, and accepted-node reporting fields carried by every viable
// node.  The hot loop only ever touches a handful of those fields at a time,
// so the node state now lives in parallel arrays indexed by a small integer
// id ("structure of arrays"):
//
//	viable node id ──┬── nodeStore.ref[id]    suffix-tree node
//	                 ├── nodeStore.depth[id]  path depth
//	                 ├── nodeStore.cLo[id] ┐  live band interval
//	                 ├── nodeStore.cHi[id] ┘
//	                 ├── nodeStore.maxSc[id]  best score on the path
//	                 ├── nodeStore.qEnd[id] ┐ where maxSc was achieved
//	                 ├── nodeStore.pDep[id] ┘
//	                 └── nodeStore.band[id]   column cells C[cLo..cHi]
//	                                          (int32, recycled by size class)
//
// Accepted nodes never expand and never store a column; their four reporting
// fields are packed into a separate, much smaller accStore instead of
// widening every viable node.  The priority queue holds 16-byte value
// entries (heapEnt) whose primary comparison is a single uint64 compare —
// no pointer dereference, no per-node allocation.
//
// Ids are recycled through per-store free lists, and both stores live in the
// Scratch so a warm engine reuses the arrays across queries.

// nodeStore holds every VIABLE search node of one search as parallel arrays.
// Scores and band cells are int32: cell values are bounded by the heuristic
// prefix sum h[0], which newSearcher caps well below 1<<31 (maxKernelScore).
type nodeStore struct {
	ref   []NodeRef
	depth []int32
	cLo   []int32
	cHi   []int32
	maxSc []int32
	qEnd  []int32
	pDep  []int32
	band  [][]int32
	free  []int32
}

// alloc returns a free viable-node id, growing the arrays when the free list
// is empty.  The caller overwrites every field, so entries are not zeroed.
//
//oasis:hotpath
func (ns *nodeStore) alloc() int32 {
	if n := len(ns.free); n > 0 {
		id := ns.free[n-1]
		ns.free = ns.free[:n-1]
		return id
	}
	id := int32(len(ns.ref))
	//oasis:allow-alloc amortized arena growth; steady-state allocs come from the free list
	ns.ref = append(ns.ref, 0)
	ns.depth = append(ns.depth, 0) //oasis:allow-alloc amortized arena growth
	ns.cLo = append(ns.cLo, 0)     //oasis:allow-alloc amortized arena growth
	ns.cHi = append(ns.cHi, 0)     //oasis:allow-alloc amortized arena growth
	ns.maxSc = append(ns.maxSc, 0) //oasis:allow-alloc amortized arena growth
	ns.qEnd = append(ns.qEnd, 0)   //oasis:allow-alloc amortized arena growth
	ns.pDep = append(ns.pDep, 0)   //oasis:allow-alloc amortized arena growth
	ns.band = append(ns.band, nil) //oasis:allow-alloc amortized arena growth
	return id
}

// reset prepares the store for a new search.  Band slices still referenced by
// entries of an early-terminated search are dropped to the GC (exactly like
// the old pointer nodes left in the abandoned heap); bands of fully processed
// nodes were already recycled to the scratch free lists.
func (ns *nodeStore) reset() {
	ns.ref = ns.ref[:0]
	ns.depth = ns.depth[:0]
	ns.cLo = ns.cLo[:0]
	ns.cHi = ns.cHi[:0]
	ns.maxSc = ns.maxSc[:0]
	ns.qEnd = ns.qEnd[:0]
	ns.pDep = ns.pDep[:0]
	for i := range ns.band {
		ns.band[i] = nil
	}
	ns.band = ns.band[:0]
	ns.free = ns.free[:0]
}

// accStore holds every ACCEPTED node's reporting fields: the subtree to
// report, the score, and where along the path it was achieved.
type accStore struct {
	ref   []NodeRef
	score []int32
	qEnd  []int32
	pDep  []int32
	free  []int32
}

//oasis:hotpath
func (as *accStore) alloc() int32 {
	if n := len(as.free); n > 0 {
		id := as.free[n-1]
		as.free = as.free[:n-1]
		return id
	}
	id := int32(len(as.ref))
	as.ref = append(as.ref, 0)     //oasis:allow-alloc amortized arena growth
	as.score = append(as.score, 0) //oasis:allow-alloc amortized arena growth
	as.qEnd = append(as.qEnd, 0)   //oasis:allow-alloc amortized arena growth
	as.pDep = append(as.pDep, 0)   //oasis:allow-alloc amortized arena growth
	return id
}

//oasis:hotpath
func (as *accStore) release(id int32) {
	as.free = append(as.free, id) //oasis:allow-alloc amortized free-list growth
}

func (as *accStore) reset() {
	as.ref = as.ref[:0]
	as.score = as.score[:0]
	as.qEnd = as.qEnd[:0]
	as.pDep = as.pDep[:0]
	as.free = as.free[:0]
}

// heapEnt is one priority-queue entry: 16 bytes of value state instead of a
// pointer into a node struct.  key packs the ordering so the primary
// comparison is one uint64 compare:
//
//	key = uint64(f - negInf) << 1 | acceptedBit
//
// Larger key = higher priority (higher f; accepted before viable at equal f,
// matching the original nodeLess).  seq breaks remaining ties by insertion
// order for run-to-run determinism.  id indexes the accStore when the
// accepted bit is set, the nodeStore otherwise.
type heapEnt struct {
	key uint64
	seq uint32
	id  int32
}

func heapKey(f int, accepted bool) uint64 {
	k := uint64(f-negInf) << 1
	if accepted {
		k |= 1
	}
	return k
}

// f recovers the node's priority bound from the packed key.
func (e heapEnt) f() int { return int(e.key>>1) + negInf }

// accepted reports whether the entry references the accStore.
func (e heapEnt) accepted() bool { return e.key&1 != 0 }

func entLess(a, b heapEnt) bool {
	if a.key != b.key {
		return a.key > b.key
	}
	return a.seq < b.seq
}

// bucketQueue is the priority queue used when the query's f domain is small
// enough to index directly (which it virtually always is: every pushed node
// has f in [minScore, h[0]], and h[0] is bounded by query length times the
// best substitution score).  One FIFO lane pair — accepted entries first,
// then viable — per f value reproduces the heap's total order (f descending,
// accepted before viable, insertion order last) with O(1) pushes and pops
// instead of cache-missing sift-downs: pops dominate the best-first loop at
// ~3 DP cells per column.
//
// The pop cursor (top) only ever rescans downward as far as new pushes raise
// it; with the admissible heuristic f is non-increasing along every search
// path, so the cursor's total downward travel per query is bounded by the f
// range, not the node count.
type bucketQueue struct {
	// ents is the entry arena, one entry per push, in push (seq) order.
	ents []bucketEnt
	// lanes[f-base] holds the two FIFO lanes for f.
	lanes []laneHeads
	// top is the highest lane offset that may be non-empty.
	top  int
	size int
	base int // f of lane offset 0 (= MinScore)
}

type bucketEnt struct {
	id   int32
	next int32 // arena index of the lane's next entry; -1 ends the lane
}

// laneHeads holds the head/tail arena indexes of one f value's two FIFO
// lanes (-1 = empty).
type laneHeads struct {
	accHead, accTail int32
	viaHead, viaTail int32
}

// maxBucketRange caps the f domain the bucket queue will index directly
// (lanes cost 16 bytes per f value); wider domains fall back to the heap.
const maxBucketRange = 1 << 16

// init prepares the queue for f values in [base, fMax].
func (q *bucketQueue) init(base, fMax int) {
	n := fMax - base + 1
	if cap(q.lanes) < n {
		q.lanes = make([]laneHeads, n)
	}
	q.lanes = q.lanes[:n]
	for i := range q.lanes {
		q.lanes[i] = laneHeads{accHead: -1, accTail: -1, viaHead: -1, viaTail: -1}
	}
	q.ents = q.ents[:0]
	q.top = 0
	q.size = 0
	q.base = base
}

//oasis:hotpath
func (q *bucketQueue) push(f int, accepted bool, id int32) {
	off := f - q.base
	e := int32(len(q.ents))
	q.ents = append(q.ents, bucketEnt{id: id, next: -1}) //oasis:allow-alloc amortized queue growth
	ln := &q.lanes[off]
	if accepted {
		if ln.accTail < 0 {
			ln.accHead = e
		} else {
			q.ents[ln.accTail].next = e
		}
		ln.accTail = e
	} else {
		if ln.viaTail < 0 {
			ln.viaHead = e
		} else {
			q.ents[ln.viaTail].next = e
		}
		ln.viaTail = e
	}
	if off > q.top {
		q.top = off
	}
	q.size++
}

// topF returns the highest queued f (advancing the cursor), or negInf when
// the queue is empty.
//
//oasis:hotpath
func (q *bucketQueue) topF() int {
	if q.size == 0 {
		return negInf
	}
	for {
		ln := &q.lanes[q.top]
		if ln.accHead >= 0 || ln.viaHead >= 0 {
			return q.base + q.top
		}
		q.top--
	}
}

//oasis:hotpath
func (q *bucketQueue) pop() (id int32, f int, accepted bool) {
	f = q.topF()
	ln := &q.lanes[q.top]
	var e int32
	if ln.accHead >= 0 {
		accepted = true
		e = ln.accHead
		ln.accHead = q.ents[e].next
		if ln.accHead < 0 {
			ln.accTail = -1
		}
	} else {
		e = ln.viaHead
		ln.viaHead = q.ents[e].next
		if ln.viaHead < 0 {
			ln.viaTail = -1
		}
	}
	q.size--
	return q.ents[e].id, f, accepted
}

// nodeHeap is a 4-ary max-heap over heapEnt (highest f first; accepted
// before viable at equal f; then insertion order).  Four children per level
// halves the sift-down depth of a binary heap, and the four 16-byte entries
// of one family span a single cache line, so the extra comparisons per level
// are nearly free next to the saved memory accesses.
type nodeHeap struct {
	items []heapEnt
}

func (h *nodeHeap) Len() int { return len(h.items) }

//oasis:hotpath
func (h *nodeHeap) push(e heapEnt) {
	h.items = append(h.items, e) //oasis:allow-alloc amortized heap growth
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if entLess(h.items[i], h.items[parent]) {
			h.items[i], h.items[parent] = h.items[parent], h.items[i]
			i = parent
			continue
		}
		break
	}
}

//oasis:hotpath
func (h *nodeHeap) pop() heapEnt {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	n := len(h.items)
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if entLess(h.items[c], h.items[best]) {
				best = c
			}
		}
		if !entLess(h.items[best], h.items[i]) {
			break
		}
		h.items[i], h.items[best] = h.items[best], h.items[i]
		i = best
	}
	return top
}
