package core
