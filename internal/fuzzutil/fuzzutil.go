// Package fuzzutil derives well-formed search inputs from arbitrary fuzzer
// bytes, shared by the fuzz targets in internal/core and internal/shard so
// both explore the same input space.
package fuzzutil

import "repro/internal/seq"

// DatabaseFromBytes maps fuzz bytes to a small database: every byte becomes
// an alphabet letter, except that a data-dependent subset of bytes acts as
// sequence separators, so the fuzzer controls both content and shape.
// Returns nil when the bytes yield no non-empty sequence (or an absurd
// number of them).
func DatabaseFromBytes(a *seq.Alphabet, data []byte) *seq.Database {
	letters := a.Letters()
	var strs []string
	var cur []byte
	for _, b := range data {
		if b%13 == 0 {
			if len(cur) > 0 {
				strs = append(strs, string(cur))
				cur = nil
			}
			continue
		}
		cur = append(cur, letters[int(b)%len(letters)])
	}
	if len(cur) > 0 {
		strs = append(strs, string(cur))
	}
	if len(strs) == 0 || len(strs) > 64 {
		return nil
	}
	db, err := seq.DatabaseFromStrings(a, strs...)
	if err != nil {
		return nil
	}
	return db
}

// QueryFromBytes maps fuzz bytes to an encoded query over the alphabet,
// rejecting empty or over-long inputs.
func QueryFromBytes(a *seq.Alphabet, data []byte, maxLen int) []byte {
	if len(data) == 0 || len(data) > maxLen {
		return nil
	}
	letters := a.Letters()
	q := make([]byte, len(data))
	for i, b := range data {
		q[i], _ = a.Code(letters[int(b)%len(letters)])
	}
	return q
}
