package blast

import (
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/score"
	"repro/internal/seq"
)

func proteinScheme() score.Scheme { return score.MustScheme(score.BLOSUM62(), -8) }

func randomProtein(rng *rand.Rand, n int) string {
	letters := "ARNDCQEGHILKMFPSTWYV"
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(20)]
	}
	return string(b)
}

// plantedDB builds a protein database in which some sequences contain a
// (mutated) copy of the motif, so heuristics have something to find.
func plantedDB(t *testing.T, rng *rand.Rand, motif string, nSeq int) *seq.Database {
	t.Helper()
	var strsCase []string
	for i := 0; i < nSeq; i++ {
		s := randomProtein(rng, 60+rng.Intn(60))
		if i%2 == 0 {
			pos := rng.Intn(len(s) - 1)
			s = s[:pos] + motif + s[pos:]
		}
		strsCase = append(strsCase, s)
	}
	db, err := seq.DatabaseFromStrings(seq.Protein, strsCase...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBlastFindsPlantedMotif(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	motif := "WWDKDGDGCITTKELW"
	db := plantedDB(t, rng, motif, 12)
	s, err := NewSearcher(db, proteinScheme(), Options{TwoHit: false, EValue: 1000})
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	hits, err := s.Search(seq.Protein.MustEncode(motif), &st)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) < 6 {
		t.Fatalf("expected the 6 planted sequences to be found, got %d hits", len(hits))
	}
	if st.SeedHits == 0 || st.Extensions == 0 || st.GappedExtensions == 0 {
		t.Fatalf("stats not collected: %+v", st)
	}
	// Hits are sorted by decreasing score and each sequence appears once.
	seen := map[int]bool{}
	for i, h := range hits {
		if i > 0 && h.Score > hits[i-1].Score {
			t.Fatal("hits not sorted by score")
		}
		if seen[h.SeqIndex] {
			t.Fatal("duplicate sequence in hit list")
		}
		seen[h.SeqIndex] = true
		if h.EValue < 0 {
			t.Fatal("negative E-value")
		}
	}
}

func TestBlastScoresNeverExceedSmithWaterman(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	motif := "ACDEFGHIKLMNPQRS"
	db := plantedDB(t, rng, motif, 10)
	sch := proteinScheme()
	s, err := NewSearcher(db, sch, Options{TwoHit: false, EValue: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	q := seq.Protein.MustEncode(motif)
	hits, err := s.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("expected hits")
	}
	for _, h := range hits {
		sw := align.Score(q, db.Sequence(h.SeqIndex).Residues, sch, nil)
		if h.Score > sw {
			t.Fatalf("BLAST score %d exceeds S-W optimum %d for sequence %d", h.Score, sw, h.SeqIndex)
		}
	}
}

func TestBlastCanMissWhatSmithWatermanFinds(t *testing.T) {
	// A query whose only similarity to the target is spread thin (no
	// 3-residue word above the neighbourhood threshold after mutation)
	// can be missed by the heuristic while S-W still reports a positive
	// score.  We verify the *capability* of missing by checking that across
	// a workload BLAST never reports more sequences than exact search.
	rng := rand.New(rand.NewSource(3))
	motif := "WCDKDGDGCITTKELW"
	db := plantedDB(t, rng, motif, 20)
	sch := proteinScheme()
	s, err := NewSearcher(db, sch, Options{TwoHit: true, EValue: 20000})
	if err != nil {
		t.Fatal(err)
	}
	q := seq.Protein.MustEncode("CDKDGDGCITTKEL")
	hits, err := s.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	minScore := s.KA().MinScore(20000, len(q), db.TotalResidues())
	exact := 0
	for i := 0; i < db.NumSequences(); i++ {
		if align.Score(q, db.Sequence(i).Residues, sch, nil) >= minScore {
			exact++
		}
	}
	if len(hits) > exact {
		t.Fatalf("heuristic reported %d sequences, exact search bound is %d", len(hits), exact)
	}
}

func TestBlastDNAExactWordSeeding(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	core := "ACGTACGGTTACGATCGG"
	var strsCase []string
	for i := 0; i < 8; i++ {
		s := ""
		for j := 0; j < 5+rng.Intn(10); j++ {
			s += string("ACGT"[rng.Intn(4)])
		}
		if i%2 == 0 {
			s += core
		}
		for j := 0; j < 5+rng.Intn(10); j++ {
			s += string("ACGT"[rng.Intn(4)])
		}
		strsCase = append(strsCase, s)
	}
	db, err := seq.DatabaseFromStrings(seq.DNA, strsCase...)
	if err != nil {
		t.Fatal(err)
	}
	sch := score.MustScheme(score.BLASTDNA(), -5)
	s, err := NewSearcher(db, sch, Options{EValue: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if s.Options().WordSize != 11 {
		t.Fatalf("DNA default word size = %d", s.Options().WordSize)
	}
	hits, err := s.Search(seq.DNA.MustEncode(core), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 4 {
		t.Fatalf("expected the 4 planted sequences, got %d", len(hits))
	}
}

func TestTwoHitIsMoreSelectiveThanOneHit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	motif := "DKDGDGCITTKELGTV"
	db := plantedDB(t, rng, motif, 16)
	sch := proteinScheme()
	one, err := NewSearcher(db, sch, Options{TwoHit: false, EValue: 20000})
	if err != nil {
		t.Fatal(err)
	}
	two, err := NewSearcher(db, sch, Options{TwoHit: true, EValue: 20000})
	if err != nil {
		t.Fatal(err)
	}
	q := seq.Protein.MustEncode(motif[:14])
	var stOne, stTwo Stats
	h1, err := one.Search(q, &stOne)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := two.Search(q, &stTwo)
	if err != nil {
		t.Fatal(err)
	}
	if stTwo.Extensions > stOne.Extensions {
		t.Fatalf("two-hit ran more extensions (%d) than one-hit (%d)", stTwo.Extensions, stOne.Extensions)
	}
	if len(h2) > len(h1) {
		t.Fatalf("two-hit found more sequences (%d) than one-hit (%d)", len(h2), len(h1))
	}
}

func TestNeighborhoodEnumeration(t *testing.T) {
	db, _ := seq.DatabaseFromStrings(seq.Protein, "ARNDCQEGHILKMFPSTWYV")
	s, err := NewSearcher(db, proteinScheme(), Options{NeighborThreshold: 13})
	if err != nil {
		t.Fatal(err)
	}
	qWord := seq.Protein.MustEncode("WWW")
	count := 0
	selfSeen := false
	selfCode, _ := s.encodeWord(qWord)
	s.enumerateNeighborhood(qWord, func(code uint32) {
		count++
		if code == selfCode {
			selfSeen = true
		}
	})
	if !selfSeen {
		t.Fatal("neighbourhood must contain the word itself (WWW scores 33)")
	}
	if count == 0 || count > 23*23*23 {
		t.Fatalf("implausible neighbourhood size %d", count)
	}
	// A higher threshold must shrink the neighbourhood.
	s2, _ := NewSearcher(db, proteinScheme(), Options{NeighborThreshold: 30})
	count2 := 0
	s2.enumerateNeighborhood(qWord, func(uint32) { count2++ })
	if count2 >= count {
		t.Fatalf("raising T did not shrink neighbourhood: %d vs %d", count2, count)
	}
}

func TestSearchValidation(t *testing.T) {
	db, _ := seq.DatabaseFromStrings(seq.Protein, "ARNDCQEGHILKMFPSTWYV")
	if _, err := NewSearcher(nil, proteinScheme(), Options{}); err == nil {
		t.Fatal("expected error for nil database")
	}
	if _, err := NewSearcher(db, score.Scheme{}, Options{}); err == nil {
		t.Fatal("expected error for invalid scheme")
	}
	dnaDB, _ := seq.DatabaseFromStrings(seq.DNA, "ACGT")
	if _, err := NewSearcher(dnaDB, proteinScheme(), Options{}); err == nil {
		t.Fatal("expected error for alphabet mismatch")
	}
	if _, err := NewSearcher(db, proteinScheme(), Options{WordSize: 1}); err == nil {
		t.Fatal("expected error for tiny word size")
	}
	s, err := NewSearcher(db, proteinScheme(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Search(nil, nil); err == nil {
		t.Fatal("expected error for empty query")
	}
	if _, err := s.Search([]byte{seq.Terminator}, nil); err == nil {
		t.Fatal("expected error for invalid query symbols")
	}
	// A query shorter than the word size cannot be seeded and returns no
	// hits rather than an error.
	hits, err := s.Search(seq.Protein.MustEncode("AR"), nil)
	if err != nil || hits != nil {
		t.Fatalf("short query: hits=%v err=%v", hits, err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	o := Options{}.Defaults(seq.KindProtein)
	if o.WordSize != 3 || o.NeighborThreshold != 11 || o.EValue != 10 || o.XDrop != 7 || o.WindowSize != 40 || o.GapTrigger != 18 {
		t.Fatalf("protein defaults wrong: %+v", o)
	}
	o = Options{}.Defaults(seq.KindDNA)
	if o.WordSize != 11 {
		t.Fatalf("dna defaults wrong: %+v", o)
	}
}

func TestEncodeWordRejectsTerminator(t *testing.T) {
	db, _ := seq.DatabaseFromStrings(seq.Protein, "ARND")
	s, err := NewSearcher(db, proteinScheme(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.encodeWord([]byte{0, seq.Terminator, 1}); ok {
		t.Fatal("terminator-containing word must be rejected")
	}
	if _, ok := s.encodeWord([]byte{0, 1, 2}); !ok {
		t.Fatal("valid word rejected")
	}
}
