// Package blast implements a word-seeded heuristic local-alignment searcher
// in the style of NCBI BLAST (Altschul et al. 1990/1997).  It exists as the
// heuristic baseline of the paper's evaluation: fast, but — unlike OASIS and
// Smith-Waterman — not guaranteed to find every alignment above the score
// threshold (Figures 3 and 5).
//
// The pipeline is the classic one: fixed-length words of the query are
// expanded into a scoring neighbourhood, matched against a precomputed word
// index of the database, optionally filtered with the two-hit heuristic,
// extended without gaps under an X-drop rule, and the best seeds are then
// extended with gaps.  Scores are converted to E-values with the
// Karlin-Altschul statistics from internal/score.
package blast

import (
	"fmt"
	"sort"

	"repro/internal/align"
	"repro/internal/score"
	"repro/internal/seq"
)

// Options configures a BLAST-style search.
type Options struct {
	// WordSize is the seed word length (default: 3 for protein, 11 for
	// DNA).
	WordSize int
	// NeighborThreshold is the minimum word score T for a database word to
	// be considered a seed match of a query word (protein only; DNA words
	// must match exactly).  Default 11.
	NeighborThreshold int
	// TwoHit requires two seed hits on the same diagonal within WindowSize
	// before extension is triggered (the BLAST 2 protein default).
	TwoHit bool
	// WindowSize is the two-hit window (default 40).
	WindowSize int
	// XDrop is the score drop-off that terminates ungapped extension
	// (default 7).
	XDrop int
	// GapTrigger is the ungapped score required before a gapped extension
	// is attempted (default 18).
	GapTrigger int
	// EValue is the reporting threshold (default 10).
	EValue float64
	// MaxHits caps the number of reported sequences (0 = unlimited).
	MaxHits int
}

// Defaults fills unset fields with BLAST-like defaults for the alphabet.
func (o Options) Defaults(kind seq.AlphabetKind) Options {
	if o.WordSize == 0 {
		if kind == seq.KindDNA {
			o.WordSize = 11
		} else {
			o.WordSize = 3
		}
	}
	if o.NeighborThreshold == 0 {
		o.NeighborThreshold = 11
	}
	if o.WindowSize == 0 {
		o.WindowSize = 40
	}
	if o.XDrop == 0 {
		o.XDrop = 7
	}
	if o.GapTrigger == 0 {
		o.GapTrigger = 18
	}
	if o.EValue == 0 {
		o.EValue = 10
	}
	return o
}

// Stats counts the work done by a search.
type Stats struct {
	// QueryWords is the number of query word positions processed.
	QueryWords int64
	// NeighborWords is the number of (word, query position) seed patterns
	// generated.
	NeighborWords int64
	// SeedHits is the number of word matches against the database.
	SeedHits int64
	// Extensions is the number of ungapped extensions performed.
	Extensions int64
	// GappedExtensions is the number of gapped extensions performed.
	GappedExtensions int64
}

// Hit is a reported database sequence with its best (heuristically found)
// alignment score.
type Hit struct {
	SeqIndex int
	SeqID    string
	Score    int
	EValue   float64
	// QueryStart/QueryEnd/TargetStart/TargetEnd delimit the gapped
	// alignment found for the best-scoring HSP (0-based, end exclusive).
	QueryStart, QueryEnd   int
	TargetStart, TargetEnd int
}

// Searcher holds the database word index; build once, query many times.
type Searcher struct {
	db     *seq.Database
	scheme score.Scheme
	ka     score.KarlinAltschul
	opts   Options

	wordSize int
	alphaN   int
	// index maps an encoded word to the global positions at which it
	// occurs in the database.
	index map[uint32][]int32
}

// NewSearcher builds the word index for the database under the scoring
// scheme.
func NewSearcher(db *seq.Database, sch score.Scheme, opts Options) (*Searcher, error) {
	if db == nil {
		return nil, fmt.Errorf("blast: nil database")
	}
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	if sch.Matrix.Alphabet() != db.Alphabet() {
		return nil, fmt.Errorf("blast: matrix %q is over a different alphabet than the database", sch.Matrix.Name())
	}
	opts = opts.Defaults(db.Alphabet().Kind())
	if opts.WordSize < 2 || opts.WordSize > 12 {
		return nil, fmt.Errorf("blast: word size %d out of range [2,12]", opts.WordSize)
	}
	stats := db.ComputeStats()
	ka, err := score.Params(sch.Matrix, stats.Frequencies)
	if err != nil {
		// Databases with degenerate composition (e.g. tiny test inputs) can
		// make the observed-frequency statistics undefined; fall back to
		// the standard background frequencies.
		ka, err = score.Params(sch.Matrix, nil)
		if err != nil {
			return nil, err
		}
	}
	s := &Searcher{
		db:       db,
		scheme:   sch,
		ka:       ka,
		opts:     opts,
		wordSize: opts.WordSize,
		alphaN:   db.Alphabet().Size(),
		index:    map[uint32][]int32{},
	}
	if err := s.buildIndex(); err != nil {
		return nil, err
	}
	return s, nil
}

// KA returns the Karlin-Altschul parameters the searcher uses; exposed so
// experiments can convert its E-value threshold into the equivalent OASIS
// minScore (paper Equation 3).
func (s *Searcher) KA() score.KarlinAltschul { return s.ka }

// Options returns the effective (defaulted) options.
func (s *Searcher) Options() Options { return s.opts }

// encodeWord packs w symbols into a uint32 (base alphabet-size).
func (s *Searcher) encodeWord(symbols []byte) (uint32, bool) {
	var v uint32
	for _, c := range symbols {
		if int(c) >= s.alphaN {
			return 0, false // terminator or invalid symbol
		}
		v = v*uint32(s.alphaN) + uint32(c)
	}
	return v, true
}

// buildIndex scans the concatenated database once and records every word
// occurrence.
func (s *Searcher) buildIndex() error {
	concat := s.db.Concat()
	if int64(len(concat)) > int64(1)<<31-1 {
		return fmt.Errorf("blast: database too large for 32-bit word index")
	}
	w := s.wordSize
	for i := 0; i+w <= len(concat); i++ {
		code, ok := s.encodeWord(concat[i : i+w])
		if !ok {
			continue
		}
		s.index[code] = append(s.index[code], int32(i))
	}
	return nil
}

// seed is a word match between query offset qPos and global database
// position dbPos.
type seed struct {
	qPos  int
	dbPos int32
}

// Search runs the heuristic search for the query and returns the best hit
// per database sequence with E-value at most the configured threshold,
// sorted by decreasing score.
func (s *Searcher) Search(query []byte, st *Stats) ([]Hit, error) {
	if len(query) == 0 {
		return nil, fmt.Errorf("blast: empty query")
	}
	if !s.db.Alphabet().ValidCodes(query) {
		return nil, fmt.Errorf("blast: query contains invalid symbols")
	}
	if st == nil {
		st = &Stats{}
	}
	seeds := s.findSeeds(query, st)
	if len(seeds) == 0 {
		return nil, nil
	}
	triggered := s.filterSeeds(query, seeds)
	best := map[int]Hit{} // sequence index -> best hit
	for _, sd := range triggered {
		st.Extensions++
		ungapped := s.ungappedExtend(query, sd)
		if ungapped < s.opts.GapTrigger {
			continue
		}
		st.GappedExtensions++
		hit, ok := s.gappedExtend(query, sd)
		if !ok {
			continue
		}
		if prev, exists := best[hit.SeqIndex]; !exists || hit.Score > prev.Score {
			best[hit.SeqIndex] = hit
		}
	}
	var hits []Hit
	for _, h := range best {
		h.EValue = s.ka.EValue(h.Score, len(query), s.db.TotalResidues())
		if h.EValue <= s.opts.EValue {
			hits = append(hits, h)
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].SeqIndex < hits[j].SeqIndex
	})
	if s.opts.MaxHits > 0 && len(hits) > s.opts.MaxHits {
		hits = hits[:s.opts.MaxHits]
	}
	return hits, nil
}

// findSeeds generates neighbourhood words for every query position and looks
// them up in the database index.
func (s *Searcher) findSeeds(query []byte, st *Stats) []seed {
	w := s.wordSize
	var seeds []seed
	if len(query) < w {
		return nil
	}
	protein := s.db.Alphabet().Kind() == seq.KindProtein
	for q := 0; q+w <= len(query); q++ {
		st.QueryWords++
		qWord := query[q : q+w]
		if protein {
			s.enumerateNeighborhood(qWord, func(code uint32) {
				st.NeighborWords++
				for _, pos := range s.index[code] {
					st.SeedHits++
					seeds = append(seeds, seed{qPos: q, dbPos: pos})
				}
			})
		} else {
			if code, ok := s.encodeWord(qWord); ok {
				st.NeighborWords++
				for _, pos := range s.index[code] {
					st.SeedHits++
					seeds = append(seeds, seed{qPos: q, dbPos: pos})
				}
			}
		}
	}
	return seeds
}

// enumerateNeighborhood calls fn with the encoded form of every word whose
// substitution score against qWord reaches the neighbourhood threshold T.
// The enumeration prunes with the per-position row maxima so it does not
// visit the entire |alphabet|^w space.
func (s *Searcher) enumerateNeighborhood(qWord []byte, fn func(code uint32)) {
	w := len(qWord)
	mat := s.scheme.Matrix
	// bestRemaining[i] = max achievable score for positions i..w-1.
	bestRemaining := make([]int, w+1)
	for i := w - 1; i >= 0; i-- {
		bestRemaining[i] = bestRemaining[i+1] + mat.RowMax(qWord[i])
	}
	word := make([]byte, w)
	var rec func(i, scoreSoFar int)
	rec = func(i, scoreSoFar int) {
		if scoreSoFar+bestRemaining[i] < s.opts.NeighborThreshold {
			return
		}
		if i == w {
			if code, ok := s.encodeWord(word); ok {
				fn(code)
			}
			return
		}
		for c := 0; c < s.alphaN; c++ {
			word[i] = byte(c)
			rec(i+1, scoreSoFar+mat.Score(qWord[i], byte(c)))
		}
	}
	rec(0, 0)
}

// filterSeeds applies the two-hit heuristic when enabled: a seed triggers an
// extension only when another seed lies on the same (sequence, diagonal)
// within the window, at a distinct offset.  With one-hit mode every seed
// triggers.
func (s *Searcher) filterSeeds(query []byte, seeds []seed) []seed {
	if !s.opts.TwoHit {
		return dedupeSeeds(seeds)
	}
	type diagKey struct {
		seqIdx int
		diag   int64
	}
	byDiag := map[diagKey][]seed{}
	for _, sd := range seeds {
		seqIdx, _, err := s.db.Locate(int64(sd.dbPos))
		if err != nil {
			continue
		}
		key := diagKey{seqIdx: seqIdx, diag: int64(sd.dbPos) - int64(sd.qPos)}
		byDiag[key] = append(byDiag[key], sd)
	}
	var out []seed
	for _, group := range byDiag {
		if len(group) < 2 {
			continue
		}
		sort.Slice(group, func(i, j int) bool { return group[i].dbPos < group[j].dbPos })
		for i := 1; i < len(group); i++ {
			gap := int(group[i].dbPos - group[i-1].dbPos)
			if gap > 0 && gap <= s.opts.WindowSize {
				out = append(out, group[i])
			}
		}
	}
	return dedupeSeeds(out)
}

func dedupeSeeds(seeds []seed) []seed {
	seen := map[seed]bool{}
	var out []seed
	for _, sd := range seeds {
		if !seen[sd] {
			seen[sd] = true
			out = append(out, sd)
		}
	}
	return out
}

// ungappedExtend extends a seed in both directions along its diagonal,
// stopping when the running score drops XDrop below the best seen.
func (s *Searcher) ungappedExtend(query []byte, sd seed) int {
	concat := s.db.Concat()
	mat := s.scheme.Matrix
	w := s.wordSize
	// Score of the seed word itself.
	base := 0
	for k := 0; k < w && sd.qPos+k < len(query); k++ {
		base += mat.Score(query[sd.qPos+k], concat[int(sd.dbPos)+k])
	}
	best := base
	// Extend right.
	run := base
	qi, di := sd.qPos+w, int(sd.dbPos)+w
	for qi < len(query) && di < len(concat) && concat[di] != seq.Terminator {
		run += mat.Score(query[qi], concat[di])
		if run > best {
			best = run
		}
		if best-run > s.opts.XDrop {
			break
		}
		qi++
		di++
	}
	// Extend left.
	run = best
	qi, di = sd.qPos-1, int(sd.dbPos)-1
	for qi >= 0 && di >= 0 && concat[di] != seq.Terminator {
		run += mat.Score(query[qi], concat[di])
		if run > best {
			best = run
		}
		if best-run > s.opts.XDrop {
			break
		}
		qi--
		di--
	}
	return best
}

// gappedExtend runs a Smith-Waterman alignment of the query against a window
// of the target sequence centred on the seed, which is how gapped BLAST
// recovers a full alignment around a high-scoring pair.
func (s *Searcher) gappedExtend(query []byte, sd seed) (Hit, bool) {
	seqIdx, local, err := s.db.Locate(int64(sd.dbPos))
	if err != nil {
		return Hit{}, false
	}
	target := s.db.Sequence(seqIdx).Residues
	margin := len(query) + s.opts.WindowSize
	lo := int(local) - margin
	if lo < 0 {
		lo = 0
	}
	hi := int(local) + s.wordSize + margin
	if hi > len(target) {
		hi = len(target)
	}
	window := target[lo:hi]
	a, err := align.Align(query, window, s.scheme)
	if err != nil || a.Score <= 0 {
		return Hit{}, false
	}
	return Hit{
		SeqIndex:    seqIdx,
		SeqID:       s.db.Sequence(seqIdx).ID,
		Score:       a.Score,
		QueryStart:  a.QueryStart,
		QueryEnd:    a.QueryEnd,
		TargetStart: lo + a.TargetStart,
		TargetEnd:   lo + a.TargetEnd,
	}, true
}
