package faultpoint

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestDisabledIsNil(t *testing.T) {
	defer Reset()
	if err := Hit(SiteDiskRead, "any"); err != nil {
		t.Fatalf("inactive site returned %v", err)
	}
	if Active() {
		t.Fatal("Active with no sites enabled")
	}
}

func TestErrorInjection(t *testing.T) {
	defer Reset()
	custom := errors.New("boom")
	Enable(SiteDiskRead, Spec{Mode: ModeError, Err: custom})
	if err := Hit(SiteDiskRead, ""); !errors.Is(err, custom) {
		t.Fatalf("got %v, want %v", err, custom)
	}
	// Default error wraps ErrInjected.
	Enable(SiteDiskRead, Spec{Mode: ModeError})
	if err := Hit(SiteDiskRead, ""); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	// Other sites stay clean.
	if err := Hit(SitePoolFill, ""); err != nil {
		t.Fatalf("inactive site returned %v", err)
	}
}

func TestTimesBound(t *testing.T) {
	defer Reset()
	Enable(SiteShardWorker, Spec{Mode: ModeError, Times: 2})
	fails := 0
	for i := 0; i < 10; i++ {
		if Hit(SiteShardWorker, "") != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("Times=2 fired %d times", fails)
	}
	if Fired(SiteShardWorker) != 2 {
		t.Fatalf("Fired = %d, want 2", Fired(SiteShardWorker))
	}
}

func TestMatchFilter(t *testing.T) {
	defer Reset()
	Enable(SiteDiskRead, Spec{Mode: ModeError, Match: "shard-2"})
	if err := Hit(SiteDiskRead, "/idx/shard-0.oasis"); err != nil {
		t.Fatalf("non-matching detail failed: %v", err)
	}
	if err := Hit(SiteDiskRead, "/idx/shard-2.oasis"); err == nil {
		t.Fatal("matching detail did not fail")
	}
}

func TestCorruptFlipsOneBit(t *testing.T) {
	defer Reset()
	Enable(SiteDiskBlock, Spec{Mode: ModeCorrupt})
	buf := make([]byte, 64)
	orig := make([]byte, 64)
	if err := HitBuf(SiteDiskBlock, "", buf); err != nil {
		t.Fatalf("corrupt mode returned error: %v", err)
	}
	diff := 0
	for i := range buf {
		if buf[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption changed %d bytes, want 1", diff)
	}
	// Hit without a buffer is a no-op for corrupt specs.
	if err := Hit(SiteDiskBlock, ""); err != nil {
		t.Fatalf("bufferless Hit on corrupt spec: %v", err)
	}
}

func TestLatency(t *testing.T) {
	defer Reset()
	Enable(SitePoolFill, Spec{Mode: ModeLatency, Delay: 10 * time.Millisecond})
	start := time.Now()
	if err := Hit(SitePoolFill, ""); err != nil {
		t.Fatalf("latency mode returned error: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("latency injection slept only %v", d)
	}
}

func TestProbabilityDeterministic(t *testing.T) {
	defer Reset()
	run := func() []bool {
		Reset()
		Enable(SiteCacheGet, Spec{Mode: ModeError, Prob: 0.5})
		out := make([]bool, 50)
		for i := range out {
			out[i] = Hit(SiteCacheGet, "") != nil
		}
		return out
	}
	a, b := run(), run()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("probabilistic spec is not reproducible across runs")
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("prob 0.5 fired %d/%d times", fails, len(a))
	}
}

func TestParseEnv(t *testing.T) {
	defer Reset()
	err := ParseEnv("diskst.read=error; bufferpool.fill=latency:5ms:0.5 ;diskst.block=corrupt:0.25@shard-1.oasis")
	if err != nil {
		t.Fatalf("ParseEnv: %v", err)
	}
	if !Active() {
		t.Fatal("no sites active after ParseEnv")
	}
	if err := Hit(SiteDiskRead, ""); err == nil {
		t.Fatal("error spec did not fire")
	}
	// Corrupt spec with match: only the matching detail is corrupted.
	buf := bytes.Repeat([]byte{0xAA}, 8)
	want := bytes.Repeat([]byte{0xAA}, 8)
	for i := 0; i < 100; i++ {
		_ = HitBuf(SiteDiskBlock, "shard-0.oasis", buf)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("corrupt spec fired on non-matching detail")
	}
	for _, bad := range []string{"nosite", "x=warble", "y=latency", "z=error:2.0", "w=error:0.5:junk"} {
		Reset()
		if err := ParseEnv(bad); err == nil {
			t.Fatalf("ParseEnv(%q) accepted", bad)
		}
	}
}
