// Package faultpoint is a tiny failpoint-injection framework: named sites in
// the serving path (disk reads, buffer-pool fills, shard workers, the result
// cache, HTTP handlers) call Hit, and tests or operators activate fault specs
// at those sites to inject errors, latency or data corruption without
// touching production code paths.
//
// The framework exists so that every fault-tolerance claim in the stack —
// checksum detection, read retries, shard quarantine, degraded streams,
// per-query deadlines — is testable end to end: the fault-matrix tests in
// internal/shard and the corruption fuzz target in internal/diskst drive real
// failures through the real code.
//
// # Zero overhead when disabled
//
// With no active sites, Hit is a single atomic load and an immediate return;
// no map lookup, no lock, no allocation.  Production binaries pay nothing
// for carrying the sites.
//
// # Activation
//
// Tests use the API directly:
//
//	defer faultpoint.Reset()
//	faultpoint.Enable(faultpoint.SiteDiskRead, faultpoint.Spec{
//	    Mode: faultpoint.ModeError, Match: "shard-2.oasis", Times: 1,
//	})
//
// Operators (and CI) use the OASIS_FAILPOINTS environment variable, parsed at
// package init time:
//
//	OASIS_FAILPOINTS="diskst.read=error;bufferpool.fill=latency:5ms;diskst.block=corrupt:0.01"
//
// Each entry is site=mode[:arg][:prob][@match]: mode is error, latency or
// corrupt; latency takes a duration arg; prob is a trigger probability in
// (0,1] (default 1); match restricts the spec to Hit calls whose detail
// string (e.g. the file path) contains the substring.
package faultpoint

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Site names wired into the serving path.  A site constant names WHERE a
// fault is injected; the Spec decides WHAT happens there.
const (
	// SiteDiskRead is every read of an index file in internal/diskst
	// (header, catalog, checksum table, and buffer-pool fills routed through
	// the checksummed reader).  Error and latency specs model failing or
	// slow disks; the detail string is the index file path.
	SiteDiskRead = "diskst.read"
	// SiteDiskBlock sees every data block after it is read but before its
	// checksum is verified; corrupt specs model bit rot that the CRC32C
	// layer must catch.  The detail string is the index file path.
	SiteDiskBlock = "diskst.block"
	// SitePoolFill is the buffer-pool page-fill path (cache misses).
	SitePoolFill = "bufferpool.fill"
	// SiteShardWorker runs at the start of each per-shard search; error
	// specs model a wedged or crashed shard worker.  The detail string is
	// "shard-<i>".
	SiteShardWorker = "shard.worker"
	// SiteCacheGet is the cross-query result cache lookup; failures there
	// must degrade to cache misses, never fail queries.
	SiteCacheGet = "qcache.get"
	// SiteServeSearch runs at the start of oasis-serve's search and batch
	// handlers; error specs model handler-level failures (HTTP 500).
	SiteServeSearch = "serve.search"
	// SiteCompactSwap fires during delta compaction, after the new delta
	// index file has been written to its temporary name but before it is
	// renamed into place and the new manifest generation lands.  Error specs
	// model a crash mid-compaction: the old manifest (and every file it
	// references) must stay intact and openable.  The detail string is the
	// delta file name.
	SiteCompactSwap = "compact.swap"
	// SiteRemoteDial fires in the coordinator's shard client before each
	// stream request is issued to a replica; error specs model a dead or
	// unreachable replica, latency specs a slow connect (which is what makes
	// the hedge timer fire).  The detail string is the replica address.
	SiteRemoteDial = "remote.dial"
	// SiteRemoteStream sees every event line the shard client reads from a
	// replica, before it is decoded: error specs model a connection dropped
	// mid-stream (failover territory), latency specs a tail-slow replica,
	// corrupt specs bit rot on the wire that the decoder must reject.  The
	// detail string is the replica address.
	SiteRemoteStream = "remote.stream"
	// SiteRemoteHedge fires when the coordinator launches a hedge request
	// against a second replica; error specs suppress the hedge attempt,
	// latency specs delay it.  The detail string is the hedged replica's
	// address.
	SiteRemoteHedge = "remote.hedge"
)

// Mode selects what an active spec does when it triggers.
type Mode int

const (
	// ModeError makes Hit return the spec's error.
	ModeError Mode = iota
	// ModeLatency makes Hit sleep for the spec's delay, then succeed.
	ModeLatency
	// ModeCorrupt makes HitBuf flip one bit of the supplied buffer (Hit
	// calls without a buffer succeed unchanged).
	ModeCorrupt
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeLatency:
		return "latency"
	case ModeCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ErrInjected is the default error returned by ModeError specs.
var ErrInjected = errors.New("faultpoint: injected fault")

// Spec describes one activated fault.
type Spec struct {
	// Mode selects error, latency or corruption injection.
	Mode Mode
	// Err is the error ModeError returns (default ErrInjected).
	Err error
	// Delay is the sleep ModeLatency injects.
	Delay time.Duration
	// Prob is the trigger probability in (0,1]; 0 means always trigger.
	// Draws come from a per-site PRNG seeded deterministically from the
	// site name, so a given spec misfires reproducibly run to run.
	Prob float64
	// Times bounds how often the spec triggers (0 = unlimited).  A spec
	// with Times=1 injects exactly one fault — the shape quarantine tests
	// want: one failure, then a healthy system.
	Times int64
	// After lets the first After matching calls pass untouched before the
	// spec starts triggering, so tests can place a fault mid-stream
	// deterministically (e.g. kill a replica connection after the 5th event)
	// instead of probabilistically.
	After int64
	// Match restricts the spec to Hit calls whose detail string contains
	// this substring (e.g. one shard's file path); empty matches every
	// call at the site.
	Match string
}

// site is one activated site's state.
type site struct {
	mu     sync.Mutex
	spec   Spec
	rng    *rand.Rand
	fired  int64
	passed int64 // matching calls let through by Spec.After
}

var (
	// nActive counts activated sites; Hit's fast path is a single load of
	// this counter.
	nActive atomic.Int64

	mu    sync.Mutex
	sites = map[string]*site{}
)

// seedFor derives a deterministic PRNG seed from the site name so
// probabilistic specs behave identically run to run.
func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h = (h ^ int64(name[i])) * 1099511628211
	}
	return h
}

// Enable activates a spec at the named site, replacing any previous spec
// there.
func Enable(name string, spec Spec) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[name]; !ok {
		nActive.Add(1)
	}
	sites[name] = &site{spec: spec, rng: rand.New(rand.NewSource(seedFor(name)))}
}

// Disable deactivates the named site.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[name]; ok {
		delete(sites, name)
		nActive.Add(-1)
	}
}

// Reset deactivates every site (deferred by tests).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	nActive.Add(-int64(len(sites)))
	sites = map[string]*site{}
}

// Active reports whether any site is activated.
func Active() bool { return nActive.Load() > 0 }

// Fired returns how many times the named site has triggered (0 when the
// site is not active).
func Fired(name string) int64 {
	mu.Lock()
	s := sites[name]
	mu.Unlock()
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// Hit evaluates the named site: with no active spec (the production case) it
// returns nil after one atomic load.  detail carries call context the spec's
// Match can filter on (a file path, a shard name); pass "" when there is
// none.
func Hit(name, detail string) error {
	if nActive.Load() == 0 {
		return nil
	}
	return hitSlow(name, detail, nil)
}

// HitBuf is Hit for sites that expose a data buffer: a triggering ModeCorrupt
// spec flips one bit of buf in place (and returns nil, so the corruption
// travels onward exactly as disk bit rot would).
func HitBuf(name, detail string, buf []byte) error {
	if nActive.Load() == 0 {
		return nil
	}
	return hitSlow(name, detail, buf)
}

func hitSlow(name, detail string, buf []byte) error {
	mu.Lock()
	s := sites[name]
	mu.Unlock()
	if s == nil {
		return nil
	}
	s.mu.Lock()
	spec := s.spec
	if spec.Match != "" && !strings.Contains(detail, spec.Match) {
		s.mu.Unlock()
		return nil
	}
	if spec.After > 0 && s.passed < spec.After {
		s.passed++
		s.mu.Unlock()
		return nil
	}
	if spec.Times > 0 && s.fired >= spec.Times {
		s.mu.Unlock()
		return nil
	}
	if spec.Prob > 0 && spec.Prob < 1 && s.rng.Float64() >= spec.Prob {
		s.mu.Unlock()
		return nil
	}
	s.fired++
	fired := s.fired
	s.mu.Unlock()

	switch spec.Mode {
	case ModeLatency:
		time.Sleep(spec.Delay)
		return nil
	case ModeCorrupt:
		if len(buf) > 0 {
			// Deterministic position: spread successive corruptions across
			// the buffer without consuming PRNG state under the site lock.
			i := int(fired-1) % len(buf)
			buf[i] ^= 1 << (uint(fired) % 8)
		}
		return nil
	default:
		if spec.Err != nil {
			return spec.Err
		}
		return fmt.Errorf("%w at %s", ErrInjected, name)
	}
}

// ParseEnv activates every entry of an OASIS_FAILPOINTS-style string:
// semicolon-separated site=mode[:arg][:prob][@match] entries (see the
// package comment).  It returns the first parse error, after activating the
// valid entries before it.
func ParseEnv(env string) error {
	for _, entry := range strings.Split(env, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, specStr, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return fmt.Errorf("faultpoint: bad entry %q (want site=spec)", entry)
		}
		spec, err := parseSpec(specStr)
		if err != nil {
			return fmt.Errorf("faultpoint: site %s: %w", name, err)
		}
		Enable(strings.TrimSpace(name), spec)
	}
	return nil
}

// parseSpec parses mode[:arg][:prob][@match].
func parseSpec(s string) (Spec, error) {
	var spec Spec
	s, match, hasMatch := cutLast(s, "@")
	if hasMatch {
		spec.Match = match
	}
	parts := strings.Split(s, ":")
	switch strings.TrimSpace(parts[0]) {
	case "error":
		spec.Mode = ModeError
	case "latency":
		spec.Mode = ModeLatency
	case "corrupt":
		spec.Mode = ModeCorrupt
	default:
		return Spec{}, fmt.Errorf("unknown mode %q", parts[0])
	}
	rest := parts[1:]
	if spec.Mode == ModeLatency {
		if len(rest) == 0 {
			return Spec{}, fmt.Errorf("latency needs a duration (latency:5ms)")
		}
		d, err := time.ParseDuration(strings.TrimSpace(rest[0]))
		if err != nil {
			return Spec{}, fmt.Errorf("bad latency duration: %w", err)
		}
		spec.Delay = d
		rest = rest[1:]
	}
	if len(rest) > 0 {
		p, err := strconv.ParseFloat(strings.TrimSpace(rest[0]), 64)
		if err != nil || p <= 0 || p > 1 {
			return Spec{}, fmt.Errorf("bad probability %q (want (0,1])", rest[0])
		}
		spec.Prob = p
		rest = rest[1:]
	}
	if len(rest) > 0 {
		return Spec{}, fmt.Errorf("trailing spec fields %q", strings.Join(rest, ":"))
	}
	return spec, nil
}

// cutLast splits s around the last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	if i := strings.LastIndex(s, sep); i >= 0 {
		return s[:i], s[i+len(sep):], true
	}
	return s, "", false
}

// EnvVar is the environment variable parsed at init time.
const EnvVar = "OASIS_FAILPOINTS"

func init() {
	if env := os.Getenv(EnvVar); env != "" {
		if err := ParseEnv(env); err != nil {
			fmt.Fprintln(os.Stderr, "faultpoint:", err)
		}
	}
}
