// Nucleotide search: the paper's second data set is the Drosophila genomic
// nucleotide collection.  This example generates a repeat-rich synthetic
// stand-in, builds the disk index, and searches short DNA probes with OASIS
// and Smith-Waterman using the unit edit-distance matrix of the paper's
// Table 1, confirming that the two agree while OASIS expands far fewer
// dynamic-programming columns.
//
//	go run ./examples/nucleotide [-residues 400000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/align"
	"repro/internal/workload"
	"repro/oasis"
)

func main() {
	residues := flag.Int64("residues", 400_000, "approximate database size in nucleotides")
	nQueries := flag.Int("queries", 8, "number of DNA probe queries")
	flag.Parse()

	cfg := workload.DefaultDNAConfig(*residues)
	db, err := workload.DNADatabase(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nucleotide database: %d sequences, %d bases\n", db.NumSequences(), db.TotalResidues())

	dir, err := os.MkdirTemp("", "oasis-dna-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	indexPath := filepath.Join(dir, "dna.oasis")
	st, err := oasis.BuildDiskIndex(indexPath, db, oasis.IndexBuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %.2f bytes/base\n\n", st.BytesPerSymbol)
	idx, err := oasis.OpenDiskIndex(indexPath, 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	// Probes: short subsequences of the database with a couple of mutations,
	// like primer / probe design workloads.
	rng := rand.New(rand.NewSource(7))
	var probes [][]byte
	for i := 0; i < *nQueries; i++ {
		s := db.Sequence(rng.Intn(db.NumSequences())).Residues
		l := 12 + rng.Intn(14)
		start := rng.Intn(len(s) - l)
		probe := append([]byte(nil), s[start:start+l]...)
		probe[rng.Intn(l)] = byte(rng.Intn(4))
		probes = append(probes, probe)
	}

	// The paper's Table 1 unit matrix: +1 match, -1 mismatch, -1 gap.
	scheme, err := oasis.NewScheme(oasis.MatrixByName("UNIT"), -1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %-6s %-10s | %-22s %-22s %-10s\n", "probe", "len", "minScore", "OASIS (hits, time, cols)", "S-W (hits, time, cols)", "agree")
	for i, probe := range probes {
		minScore := len(probe) * 3 / 4 // require a strong (75%) match
		var ost oasis.SearchStats
		opts := oasis.SearchOptions{Scheme: scheme, MinScore: minScore, Stats: &ost}

		startT := time.Now()
		oh, err := oasis.SearchAll(idx, probe, opts)
		if err != nil {
			log.Fatal(err)
		}
		ot := time.Since(startT)

		var sst align.Stats
		startT = time.Now()
		sh, err := align.SearchDatabase(db, probe, scheme, align.Options{MinScore: minScore, Stats: &sst})
		if err != nil {
			log.Fatal(err)
		}
		swt := time.Since(startT)

		// Compare the two result sets by (sequence, score); the streaming
		// order of equal-scoring sequences may legitimately differ.
		agree := len(oh) == len(sh)
		if agree {
			want := map[int]int{}
			for _, h := range sh {
				want[h.SeqIndex] = h.Score
			}
			for _, h := range oh {
				if want[h.SeqIndex] != h.Score {
					agree = false
					break
				}
			}
		}
		fmt.Printf("P%-7d %-6d %-10d | %4d %-10s %-8d %4d %-10s %-8d %-10v\n",
			i, len(probe), minScore,
			len(oh), ot.Round(time.Microsecond), ost.ColumnsExpanded,
			len(sh), swt.Round(time.Microsecond), sst.ColumnsExpanded,
			agree)
		if !agree {
			log.Fatal("OASIS and Smith-Waterman disagree — this should be impossible")
		}
	}
	fmt.Println("\nOASIS returned exactly the Smith-Waterman hit set for every probe while")
	fmt.Println("expanding only a small fraction of the dynamic-programming columns.")
}
