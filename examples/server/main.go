// Warm-engine lifecycle demo: build the OASIS engine ONCE, serve MANY
// queries over HTTP, stream top-k hits to each client in decreasing score
// order — the batch-engine pattern behind cmd/oasis-serve, self-contained
// against an in-process HTTP server so it runs anywhere:
//
//	go run ./examples/server
//
// The expensive work (suffix-tree construction, shard partitioning) happens
// exactly once, before the server accepts traffic; every request after that
// only pays for its own search, with scratch buffers recycled across the
// query stream.  For the production front end (FASTA loading, batch
// endpoint, graceful shutdown) run cmd/oasis-serve instead.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/oasis"
)

func main() {
	// --- Build once: database -> warm sharded engine -----------------------
	raw := map[string]string{
		"CALM_HUMAN":  "ADQLTEEQIAEFKEAFSLFDKDGDGTITTKELGTVMRSLGQNPTEAELQDMINEVDADGNGTIDFPEFLTMMARKM",
		"TNNC1_HUMAN": "MDDIYKAAVEQLTEEQKNEFKAAFDIFVLGAEDGCISTKELGKVMRMLGQNPTPEELQEMIDEVDEDGSGTVDFDEFLVMMVRCM",
		"MYG_HUMAN":   "GLSDGEWQLVLNVWGKVEADIPGHGQEVLIRLFKGHPETLEKFDKFKHLKSEDEMKASEDLKKHGATVLTALGGILKKKGHHEAEI",
		"PARV_HUMAN":  "SMTDLLNAEDIKKAVGAFSATDSFDHKKFFQMVGLKKKSADDVKKVFHMLDKDKSGFIEEDELGFILKGFSPDARDLSAKETKMLM",
		"UNRELATED":   "PPPPGGGGSSSSPPPPGGGGSSSSPPPPGGGGSSSS",
	}
	var seqs []oasis.Sequence
	for id, residues := range raw {
		seqs = append(seqs, oasis.Sequence{ID: id, Residues: oasis.Protein.MustEncode(residues)})
	}
	db, err := oasis.NewDatabase(oasis.Protein, seqs)
	if err != nil {
		log.Fatal(err)
	}
	build := time.Now()
	eng, err := oasis.NewEngine(db, oasis.EngineOptions{Shards: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	fmt.Printf("warm engine: %d sequences, %d shards, built once in %s\n\n",
		db.NumSequences(), eng.NumShards(), time.Since(build).Round(time.Microsecond))

	scheme, err := oasis.NewScheme(oasis.MatrixByName("BLOSUM62"), -8)
	if err != nil {
		log.Fatal(err)
	}

	// --- Serve many: every request reuses the same engine ------------------
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Query string `json:"query"`
			Top   int    `json:"top"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		query, err := db.Alphabet().Encode(req.Query)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		opts, err := oasis.NewSearchOptions(scheme, db, query,
			oasis.WithEValue(20000), oasis.WithMaxResults(req.Top))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		flusher, _ := w.(http.Flusher)
		// Stream top-k: hits leave the server strongest-first the moment
		// OASIS finds them; the client can hang up any time (r.Context()).
		err = eng.Search(r.Context(), query, opts, func(h oasis.Hit) bool {
			if err := enc.Encode(map[string]any{"rank": h.Rank, "seq_id": h.SeqID, "score": h.Score}); err != nil {
				return false
			}
			if flusher != nil {
				flusher.Flush()
			}
			return true
		})
		if err != nil {
			log.Printf("search: %v", err)
		}
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Shutdown(context.Background())
	url := "http://" + ln.Addr().String()

	// --- A client streaming top-3 hits for two queries ---------------------
	for _, q := range []string{"DKDGDGTITTKE", "FDKFKHLK"} {
		fmt.Printf("query %s -> top 3 (streamed):\n", q)
		body := fmt.Sprintf(`{"query":%q,"top":3}`, q)
		resp, err := http.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			fmt.Printf("  %s\n", sc.Text())
		}
		resp.Body.Close()
		fmt.Println()
	}
	st := eng.Stats()
	fmt.Printf("engine lifetime: %d queries served, %d hits, %d DP columns expanded\n",
		st.QueriesServed, st.HitsReported, st.Search.ColumnsExpanded)
}
