// Quickstart: build an in-memory OASIS index over a handful of protein
// sequences and run an accurate local-alignment search, printing results as
// they stream in (highest score first).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/oasis"
)

func main() {
	// A tiny hand-written protein "database".  In real use you would load a
	// FASTA file with oasis.LoadFASTA.
	raw := map[string]string{
		"CALM_HUMAN":  "ADQLTEEQIAEFKEAFSLFDKDGDGTITTKELGTVMRSLGQNPTEAELQDMINEVDADGNGTIDFPEFLTMMARKM",
		"TNNC1_HUMAN": "MDDIYKAAVEQLTEEQKNEFKAAFDIFVLGAEDGCISTKELGKVMRMLGQNPTPEELQEMIDEVDEDGSGTVDFDEFLVMMVRCM",
		"MYG_HUMAN":   "GLSDGEWQLVLNVWGKVEADIPGHGQEVLIRLFKGHPETLEKFDKFKHLKSEDEMKASEDLKKHGATVLTALGGILKKKGHHEAEI",
		"UNRELATED":   "PPPPGGGGSSSSPPPPGGGGSSSSPPPPGGGGSSSS",
	}
	var seqs []oasis.Sequence
	for id, residues := range raw {
		enc, err := oasis.Protein.Encode(residues)
		if err != nil {
			log.Fatal(err)
		}
		seqs = append(seqs, oasis.Sequence{ID: id, Residues: enc})
	}
	db, err := oasis.NewDatabase(oasis.Protein, seqs)
	if err != nil {
		log.Fatal(err)
	}

	// Build the suffix-tree index (in memory; see examples/peptidesearch
	// for the disk-based index).
	idx, err := oasis.NewMemoryIndex(db)
	if err != nil {
		log.Fatal(err)
	}

	// A short peptide query: the classic EF-hand calcium-binding motif.
	query := oasis.Protein.MustEncode("DKDGDGTITTKE")

	scheme, err := oasis.NewScheme(oasis.MatrixByName("BLOSUM62"), -8)
	if err != nil {
		log.Fatal(err)
	}
	opts, err := oasis.NewSearchOptions(scheme, db, query, oasis.WithEValue(20000))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query: DKDGDGTITTKE (%d residues), minScore %d\n\n", len(query), opts.MinScore)
	fmt.Println("results (streamed in decreasing score order):")
	err = oasis.Search(idx, query, opts, func(h oasis.Hit) bool {
		fmt.Printf("  #%d %-12s score=%d  E=%.2g\n", h.Rank, h.SeqID, h.Score, h.EValue)
		// Show the full alignment for the best hit.
		if h.Rank == 1 {
			a, err := oasis.RecoverAlignment(idx, query, scheme, h)
			if err == nil {
				fmt.Printf("\nbest alignment (identity %.0f%%, %s):\n%s\n",
					100*a.Identity(), a.CIGAR(),
					a.Format(oasis.Protein, query, db.Sequence(h.SeqIndex).Residues))
			}
		}
		return true // keep streaming; return false to stop after the top hits
	})
	if err != nil {
		log.Fatal(err)
	}
}
