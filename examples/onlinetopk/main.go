// Online top-k: demonstrates the paper's online property (Figure 9).  OASIS
// returns results in decreasing score order, so a client that only needs the
// best few matches can stop the search as soon as it has them — long before
// the full search would finish — and the first results arrive within a small
// fraction of the total query time.
//
//	go run ./examples/onlinetopk [-k 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/workload"
	"repro/oasis"
)

func main() {
	k := flag.Int("k", 10, "number of top results to fetch in the online run")
	residues := flag.Int64("residues", 200_000, "approximate database size in residues")
	flag.Parse()

	cfg := workload.DefaultProteinConfig(*residues)
	db, motifs, err := workload.ProteinDatabase(cfg)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := oasis.NewMemoryIndex(db)
	if err != nil {
		log.Fatal(err)
	}

	// Query with a 13-residue peptide taken from a planted motif (the paper
	// uses the calcium-binding motif DKDGDGCITTKEL for this experiment).
	motif := motifs[0].Residues
	if len(motif) > 13 {
		motif = motif[:13]
	}
	query := motif
	scheme, err := oasis.NewScheme(oasis.MatrixByName("PAM30"), -10)
	if err != nil {
		log.Fatal(err)
	}
	opts, err := oasis.NewSearchOptions(scheme, db, query, oasis.WithEValue(20000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d sequences (%d residues); query length %d; minScore %d\n\n",
		db.NumSequences(), db.TotalResidues(), len(query), opts.MinScore)

	// Full (offline) run: collect everything, remember when each result
	// arrived.
	type arrival struct {
		rank    int
		score   int
		elapsed time.Duration
	}
	var arrivals []arrival
	start := time.Now()
	err = oasis.Search(idx, query, opts, func(h oasis.Hit) bool {
		arrivals = append(arrivals, arrival{rank: h.Rank, score: h.Score, elapsed: time.Since(start)})
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fullTime := time.Since(start)
	if len(arrivals) == 0 {
		log.Fatal("no results — increase -residues")
	}

	fmt.Printf("full search: %d results in %s\n", len(arrivals), fullTime.Round(time.Microsecond))
	fmt.Println("arrival times of selected results (paper Figure 9):")
	for _, i := range []int{0, 9, 39, 99, len(arrivals) - 1} {
		if i < len(arrivals) && i >= 0 {
			a := arrivals[i]
			fmt.Printf("  result #%-5d score=%-5d arrived at %-12s (%.1f%% of total time)\n",
				a.rank, a.score, a.elapsed.Round(time.Microsecond),
				100*float64(a.elapsed)/float64(fullTime))
		}
	}

	// Online top-k run: stop as soon as the k best sequences are in hand.
	optsTopK := opts
	optsTopK.MaxResults = *k
	var stats oasis.SearchStats
	optsTopK.Stats = &stats
	start = time.Now()
	top, err := oasis.SearchAll(idx, query, optsTopK)
	if err != nil {
		log.Fatal(err)
	}
	topTime := time.Since(start)

	fmt.Printf("\nonline top-%d: %d results in %s (%.1f%% of the full search time)\n",
		*k, len(top), topTime.Round(time.Microsecond), 100*float64(topTime)/float64(fullTime))
	for _, h := range top {
		fmt.Printf("  #%-3d %-14s score=%d\n", h.Rank, h.SeqID, h.Score)
	}
	fmt.Printf("work done: %d columns expanded, %d suffix-tree nodes expanded\n",
		stats.ColumnsExpanded, stats.NodesExpanded)
	fmt.Println("\nBecause results are emitted in decreasing score order, the top-k prefix of the")
	fmt.Println("online stream is exactly the k best sequences — no post-hoc sorting or rescanning.")
}
