// Peptide search: the paper's headline workload.  Builds a SWISS-PROT-like
// synthetic protein database, writes the disk-based suffix-tree index, and
// runs a set of short peptide (motif) queries with all three searchers —
// OASIS, Smith-Waterman and the BLAST-style heuristic — comparing times and
// result counts, as in the paper's Figures 3 and 5.
//
//	go run ./examples/peptidesearch [-residues 300000] [-queries 15]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/workload"
	"repro/oasis"
)

func main() {
	residues := flag.Int64("residues", 300_000, "approximate database size in residues")
	nQueries := flag.Int("queries", 15, "number of peptide queries")
	eValue := flag.Float64("evalue", 20000, "selectivity (E-value)")
	flag.Parse()

	// 1. Generate the SWISS-PROT stand-in with planted motif families and a
	//    ProClass-like query workload drawn from those motifs.
	cfg := workload.DefaultProteinConfig(*residues)
	db, motifs, err := workload.ProteinDatabase(cfg)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := workload.MotifQueries(db, motifs, workload.DefaultQueryConfig(*nQueries))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d sequences, %d residues; %d peptide queries\n",
		db.NumSequences(), db.TotalResidues(), len(queries))

	// 2. Build and open the disk index (paper Section 3.4).
	dir, err := os.MkdirTemp("", "oasis-peptide-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	indexPath := filepath.Join(dir, "proteins.oasis")
	buildStart := time.Now()
	st, err := oasis.BuildDiskIndex(indexPath, db, oasis.IndexBuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %.2f bytes/symbol, built in %s\n\n", st.BytesPerSymbol, time.Since(buildStart).Round(time.Millisecond))
	idx, err := oasis.OpenDiskIndex(indexPath, 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	scheme, err := oasis.NewScheme(oasis.MatrixByName("PAM30"), -10)
	if err != nil {
		log.Fatal(err)
	}
	heuristic, err := oasis.NewBLAST(db, scheme, oasis.BLASTOptions{TwoHit: true, EValue: *eValue})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run every query with the three searchers.
	var oasisTotal, swTotal, blastTotal time.Duration
	var oasisHits, swHits, blastHits int
	fmt.Printf("%-8s %-6s | %-18s %-18s %-18s\n", "query", "len", "OASIS (hits,time)", "S-W (hits,time)", "BLAST (hits,time)")
	for _, q := range queries {
		opts, err := oasis.NewSearchOptions(scheme, db, q.Residues, oasis.WithEValue(*eValue))
		if err != nil {
			log.Fatal(err)
		}

		start := time.Now()
		oh, err := oasis.SearchAll(idx, q.Residues, opts)
		if err != nil {
			log.Fatal(err)
		}
		ot := time.Since(start)

		start = time.Now()
		sh, err := oasis.SmithWaterman(db, q.Residues, scheme, opts.MinScore)
		if err != nil {
			log.Fatal(err)
		}
		st := time.Since(start)

		start = time.Now()
		bh, err := heuristic.Search(q.Residues, nil)
		if err != nil {
			log.Fatal(err)
		}
		bt := time.Since(start)

		fmt.Printf("%-8s %-6d | %5d %-12s %5d %-12s %5d %-12s\n",
			q.ID, len(q.Residues),
			len(oh), ot.Round(time.Microsecond),
			len(sh), st.Round(time.Microsecond),
			len(bh), bt.Round(time.Microsecond))

		oasisTotal += ot
		swTotal += st
		blastTotal += bt
		oasisHits += len(oh)
		swHits += len(sh)
		blastHits += len(bh)
	}

	fmt.Printf("\ntotals: OASIS %s (%d hits), S-W %s (%d hits), BLAST %s (%d hits)\n",
		oasisTotal.Round(time.Millisecond), oasisHits,
		swTotal.Round(time.Millisecond), swHits,
		blastTotal.Round(time.Millisecond), blastHits)
	if oasisTotal > 0 {
		fmt.Printf("S-W / OASIS speedup: %.1fx\n", float64(swTotal)/float64(oasisTotal))
	}
	if blastHits > 0 {
		fmt.Printf("additional matches found by OASIS over the heuristic: %.1f%%\n",
			100*float64(oasisHits-blastHits)/float64(blastHits))
	}
	fmt.Println("\nOASIS and S-W report identical hit sets (both are exact); the heuristic may miss matches.")
}
